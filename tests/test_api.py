"""The ``repro.api`` façade (DESIGN.md §13).

The acceptance contract of the API redesign:

* **golden parity** — ``Simulation(...)`` produces results bit-identical
  to constructing the engines directly, for every registered controller
  × both backends × two seeds;
* **registries** — controller/backend names resolve through one table
  that covers (at least) everything the CLI accepts;
* **observers** — lifecycle hooks fire in registration order and see
  the same hours the legacy ``hour_hooks`` did;
* **config validation** — both config dataclasses reject contradictory
  flags at construction time;
* **one construction path** — no consumer under ``src/`` or
  ``examples/`` builds an engine directly anymore.
"""

import pathlib
import re
from dataclasses import fields

import pytest

from repro.api import (
    Observer,
    Registry,
    RunResult,
    Simulation,
    as_observer,
    backends,
    build_controller,
    controllers,
)
from repro.experiments.common import build_fleet, build_testbed
from repro.sim.event_driven import EventConfig, EventDrivenSimulation, EventResult
from repro.sim.hourly import HourlyConfig, HourlyResult, HourlySimulator
from repro.sim.sweep import CONTROLLER_NAMES

REPO = pathlib.Path(__file__).resolve().parents[1]

#: Everything the registry ships, including the passive baseline.
ALL_CONTROLLERS = ("drowsy", "neat", "neat-distributed", "oasis", "none")


def _dc(seed, hours=24, n_vms=12):
    return build_fleet(n_hosts=3, n_vms=n_vms, llmi_fraction=0.5,
                       hours=hours, seed=seed)


# ----------------------------------------------------------------------
# golden parity: façade == direct engine construction, bit for bit
# ----------------------------------------------------------------------

class TestGoldenParity:
    @pytest.mark.parametrize("controller", ALL_CONTROLLERS)
    @pytest.mark.parametrize("seed", [7, 11])
    def test_hourly_bit_identical(self, controller, seed):
        dc1 = _dc(seed)
        direct = HourlySimulator(
            dc1, build_controller(controller, dc1, dc1.params),
            dc1.params).run(12)
        dc2 = _dc(seed)
        unified = Simulation(dc2, controller, "hourly").run(12)
        assert isinstance(direct, HourlyResult)
        assert isinstance(unified, RunResult)
        for f in fields(HourlyResult):
            assert getattr(unified, f.name) == getattr(direct, f.name), f.name
        # Derived metrics agree with the native result's own.
        assert unified.total_energy_kwh == direct.total_energy_kwh
        assert unified.global_suspended_fraction == direct.global_suspended_fraction
        assert unified.slatah == direct.slatah
        assert unified.esv == direct.esv
        # Backend provenance: event-only fields are None, not zero.
        assert unified.backend == "hourly"
        assert unified.request_summary is None
        assert unified.resume_cycles_by_host is None
        assert unified.wol_sent is None
        assert unified.events_processed is None

    @pytest.mark.parametrize("controller", ALL_CONTROLLERS)
    @pytest.mark.parametrize("seed", [7, 11])
    def test_event_bit_identical(self, controller, seed):
        dc1 = _dc(seed)
        direct = EventDrivenSimulation(
            dc1, build_controller(controller, dc1, dc1.params),
            dc1.params, EventConfig(seed=seed)).run(6)
        dc2 = _dc(seed)
        unified = Simulation(dc2, controller, "event", seed=seed).run(6)
        assert isinstance(direct, EventResult)
        for f in fields(EventResult):
            assert getattr(unified, f.name) == getattr(direct, f.name), f.name
        assert unified.backend == "event"
        # Hourly-only accounting is absent, so its derived metrics say
        # "not measured" instead of a fake zero.
        assert unified.overload_host_hours is None
        assert unified.active_host_hours is None
        assert unified.slatah is None
        assert unified.esv is None

    def test_config_and_hooks_pass_through(self):
        """Non-default configs and hour hooks reach the engine verbatim."""
        seen_direct, seen_unified = [], []
        config = HourlyConfig(relocate_all_mode=True, power_off_empty=False)
        dc1 = _dc(3)
        direct = HourlySimulator(
            dc1, build_controller("drowsy", dc1, dc1.params), dc1.params,
            config, hour_hooks=(lambda t, now: seen_direct.append(t),)
        ).run(8)
        dc2 = _dc(3)
        unified = Simulation(
            dc2, "drowsy", config=config,
            observers=(lambda t, now: seen_unified.append(t),)).run(8)
        assert seen_direct == seen_unified == list(range(8))
        for f in fields(HourlyResult):
            assert getattr(unified, f.name) == getattr(direct, f.name), f.name

    def test_from_scenario_matches_compiler(self):
        from repro.scenarios import ScenarioCompiler, get_scenario

        spec = get_scenario("dev-churn").scaled(0.5)
        via_compiler = ScenarioCompiler(spec).compile(
            controller="drowsy", simulator="event", seed=2, hours=12).run()
        via_facade = Simulation.from_scenario(
            "dev-churn", seed=2, controller="drowsy", backend="event",
            scale=0.5, hours=12).run()
        assert via_facade == via_compiler  # RunResult dataclass equality

    def test_accepts_testbed_wrapper(self):
        bed = build_testbed(days=1)
        result = Simulation(bed, "neat").run(12)
        assert result.hours == 12
        assert result.total_energy_kwh > 0.0

    def test_rejects_non_datacenter(self):
        with pytest.raises(TypeError, match="DataCenter"):
            Simulation(object())

    def test_run_requires_horizon_unless_scenario(self):
        sim = Simulation(_dc(1))
        with pytest.raises(ValueError, match="n_hours"):
            sim.run()
        scenario_sim = Simulation.from_scenario("steady-llmu", seed=0,
                                                scale=0.25, hours=4)
        assert scenario_sim.run().hours == 4  # horizon carried by the spec


# ----------------------------------------------------------------------
# registries
# ----------------------------------------------------------------------

class TestRegistries:
    def test_controllers_cover_cli_choices(self):
        assert set(controllers.names()) >= set(CONTROLLER_NAMES)
        assert "none" in controllers

    def test_backends_registered(self):
        assert set(backends.names()) == {"hourly", "event", "sharded"}

    def test_unknown_names_fail_fast_with_choices(self):
        with pytest.raises(ValueError, match="unknown controller.*drowsy"):
            controllers.get("bogus")
        with pytest.raises(ValueError, match="unknown backend.*hourly"):
            backends.get("quantum")
        with pytest.raises(ValueError, match="unknown controller"):
            Simulation(_dc(1), "bogus")
        with pytest.raises(ValueError, match="unknown backend"):
            Simulation(_dc(1), "drowsy", "quantum")

    def test_factories_build_named_controllers(self):
        dc = _dc(5)
        # Registry keys are stable identifiers; the controllers' own
        # display names may differ (e.g. "drowsy" -> "drowsy-dc").
        expected = {"drowsy": "drowsy-dc", "neat": "neat",
                    "neat-distributed": "neat-distributed",
                    "oasis": "oasis", "none": "none"}
        for name in ALL_CONTROLLERS:
            controller = build_controller(name, dc, dc.params)
            assert controller.name == expected[name]
            assert callable(controller.observe_hour)

    def test_registration_protocol(self):
        reg = Registry("widget")
        reg.register("a", 1)

        @reg.register("b")
        def make_b():
            return 2

        assert reg.names() == ("a", "b")
        assert reg.get("b")() == 2
        assert "a" in reg and len(reg) == 2 and list(reg) == ["a", "b"]
        with pytest.raises(ValueError, match="already registered"):
            reg.register("a", 3)

    def test_custom_controller_reaches_every_entry_point(self):
        """Register once, resolve from the façade, the sweep cells and
        the CLI validator — the one-path contract."""
        from repro.cli import _validated_controllers
        from repro.sim.sweep import SweepCell, run_cell

        @controllers.register("test-passive")
        def _factory(dc, params):
            from repro.consolidation.baseline import PassiveController

            ctrl = PassiveController()
            ctrl.name = "test-passive"
            return ctrl

        try:
            result = Simulation(_dc(2), "test-passive").run(4)
            assert result.controller_name == "test-passive"
            row = run_cell(SweepCell(controller="test-passive", n_vms=8,
                                     seed=1, hours=4))
            assert row.controller == "test-passive"
            assert _validated_controllers("drowsy,test-passive") == (
                "drowsy", "test-passive")
        finally:
            del controllers._entries["test-passive"]


# ----------------------------------------------------------------------
# observers
# ----------------------------------------------------------------------

class Recorder(Observer):
    def __init__(self, label, log):
        self.label = label
        self.log = log

    def on_run_start(self, sim, start_hour, n_hours):
        self.log.append((self.label, "start", start_hour, n_hours))

    def on_hour(self, t, now):
        self.log.append((self.label, "hour", t))

    def on_run_end(self, result):
        self.log.append((self.label, "end", result.backend))


class TestObservers:
    def test_lifecycle_order(self):
        """start (registration order) → per-hour interleaved in
        registration order → end (registration order), with the unified
        result delivered to on_run_end."""
        log = []
        sim = Simulation(_dc(4), "none",
                         observers=(Recorder("a", log), Recorder("b", log)))
        result = sim.run(2)
        assert log == [
            ("a", "start", 0, 2), ("b", "start", 0, 2),
            ("a", "hour", 0), ("b", "hour", 0),
            ("a", "hour", 1), ("b", "hour", 1),
            ("a", "end", "hourly"), ("b", "end", "hourly"),
        ]
        assert isinstance(result, RunResult)
        assert sim.last_result is result

    def test_event_backend_fires_observers_too(self):
        log = []
        Simulation(_dc(4), "none", "event", seed=1,
                   observers=(Recorder("a", log),)).run(2)
        assert [e[:2] for e in log] == [
            ("a", "start"), ("a", "hour"), ("a", "hour"), ("a", "end")]
        assert log[-1] == ("a", "end", "event")

    def test_as_observer_adapters(self):
        hours = []
        adapted = as_observer(lambda t, now: hours.append(t))
        adapted.on_run_start(None, 0, 1)  # no-op, not an error
        adapted.on_hour(3, 0.0)
        adapted.on_run_end(None)
        assert hours == [3]

        class Partial:  # duck-typed subset
            def __init__(self):
                self.ended = False

            def on_run_end(self, result):
                self.ended = True

        partial = Partial()
        obs = as_observer(partial)
        obs.on_hour(0, 0.0)  # filled no-op
        obs.on_run_end(None)
        assert partial.ended

        full = Recorder("x", [])
        assert as_observer(full) is full
        with pytest.raises(TypeError, match="not an observer"):
            as_observer(42)

    def test_plain_callable_observer_sees_every_hour(self):
        hours = []
        Simulation(_dc(4), "none",
                   observers=(lambda t, now: hours.append(t),)).run(3)
        assert hours == [0, 1, 2]


# ----------------------------------------------------------------------
# config validation (both configs, one contract)
# ----------------------------------------------------------------------

class TestConfigValidation:
    @pytest.mark.parametrize("cls", [HourlyConfig, EventConfig])
    def test_host_accounting_follows_fleet_model(self, cls):
        assert cls().use_host_accounting is True
        assert cls(use_fleet_model=False).use_host_accounting is False
        assert cls(use_host_accounting=False).use_host_accounting is False
        with pytest.raises(ValueError, match="use_fleet_model"):
            cls(use_fleet_model=False, use_host_accounting=True)

    @pytest.mark.parametrize("cls", [HourlyConfig, EventConfig])
    def test_consolidation_period_validated(self, cls):
        with pytest.raises(ValueError, match="consolidation_period_h"):
            cls(consolidation_period_h=0)

    def test_event_flag_contradictions_raise_at_config_time(self):
        with pytest.raises(ValueError, match="request_streams"):
            EventConfig(request_streams="typo")
        with pytest.raises(ValueError, match="bulk"):
            EventConfig(request_streams="per-vm", use_bulk_requests=False)
        with pytest.raises(ValueError, match="batched"):
            EventConfig(adaptive_checks=True, use_batched_checks=False)
        with pytest.raises(ValueError, match="adaptive_max_factor"):
            EventConfig(adaptive_max_factor=0)

    def test_backend_rejects_wrong_config_type(self):
        with pytest.raises(TypeError, match="HourlyConfig"):
            Simulation(_dc(1), "drowsy", "hourly", config=EventConfig())
        with pytest.raises(TypeError, match="EventConfig"):
            Simulation(_dc(1), "drowsy", "event", config=HourlyConfig())

    def test_seed_threads_into_event_config(self):
        sim = Simulation(_dc(1), "none", "event", seed=5)
        assert sim.config.seed == 5
        sim2 = Simulation(_dc(1), "none", "event", seed=5,
                          config=EventConfig(seed=1, request_streams="per-vm"))
        assert sim2.config.seed == 5
        assert sim2.config.request_streams == "per-vm"
        # The hourly backend accepts (and ignores) a seed for signature
        # uniformity — runs draw no randomness there.
        assert Simulation(_dc(1), "none", seed=5).config == HourlyConfig()


# ----------------------------------------------------------------------
# one construction path
# ----------------------------------------------------------------------

class TestSingleConstructionPath:
    def test_no_direct_engine_construction_outside_core(self):
        """The acceptance grep of the API redesign: every consumer goes
        through ``repro.api`` — direct engine construction survives only
        inside the engines' own package and the façade."""
        pattern = re.compile(r"\b(?:HourlySimulator|EventDrivenSimulation)\(")
        allowed = {REPO / "src" / "repro" / "sim",
                   REPO / "src" / "repro" / "api"}
        offenders = []
        for root in (REPO / "src", REPO / "examples"):
            for path in root.rglob("*.py"):
                if any(parent in allowed for parent in path.parents):
                    continue
                if pattern.search(path.read_text()):
                    offenders.append(str(path.relative_to(REPO)))
        assert not offenders, (
            f"direct simulator construction outside repro.sim/repro.api: "
            f"{offenders}")
