"""Observability layer (DESIGN.md §17): deterministic metrics, span
tracing, profiling hooks, structured logging and live progress.

The heart of the suite is the bit-parity grid: for every backend and
controller, a run with *all* telemetry enabled produces a ``RunResult``
equal (``==``) to the telemetry-off run's — the frozen
:class:`~repro.obs.Telemetry` rides along on a ``compare=False`` field.
Around it: Chrome-trace schema and span-tiling invariants, cross-process
shard-span merging, metrics surviving checkpoint/resume, the wall-clock
vs simulated-clock observer contract, and a Hypothesis fuzz asserting
no :class:`~repro.obs.TelemetryConfig` ever changes a result.
"""

import functools
import io
import itertools
import json
import pstats
import time

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.api import RunResult, ShardedConfig, Simulation
from repro.api.observers import Observer, WallClockHour, hour_hook
from repro.core.calendar import time_of_hour
from repro.experiments.common import build_fleet
from repro.obs import (
    MetricsRecorder,
    ProgressObserver,
    Telemetry,
    TelemetryConfig,
    set_default_telemetry,
)
from repro.obs.progress import progress_line
from repro.resilience import CheckpointPolicy
from repro.sim.sweep import SweepRunner, grid

H = 10        # in-process horizons
SHARD_H = 8   # sharded horizons (3-4 shards of the event inner)


def small_fleet(hours=H):
    return build_fleet(n_hosts=4, n_vms=12, llmi_fraction=0.5,
                       hours=hours, seed=3)


def shard_fleet():
    # Unique VM IPs keep the fleet inside the sharded waking envelope
    # (the parity precondition the sharded suite documents).
    dc = build_fleet(n_hosts=6, n_vms=16, llmi_fraction=0.5,
                     hours=SHARD_H, seed=3)
    for i, vm in enumerate(dc.vms):
        vm.ip_address = f"10.9.0.{i + 1}"
    return dc


def build_sim(backend, controller="drowsy", **kw):
    if backend == "sharded":
        return Simulation(shard_fleet(), controller, "sharded", seed=3,
                          config=ShardedConfig(shards=3, inner="event",
                                               workers=0), **kw)
    return Simulation(small_fleet(), controller, backend, seed=3, **kw)


def horizon(backend):
    return SHARD_H if backend == "sharded" else H


@functools.lru_cache(maxsize=None)
def base_result(backend, controller="drowsy"):
    """The telemetry-off oracle, computed once per (backend, controller)."""
    return build_sim(backend, controller).run(horizon(backend))


# ----------------------------------------------------------------------
# bit parity: telemetry on == telemetry off, per backend x controller
# ----------------------------------------------------------------------
class TestBitParity:
    @pytest.mark.parametrize("backend", ["hourly", "event", "sharded"])
    @pytest.mark.parametrize("controller", ["drowsy", "neat"])
    def test_full_telemetry_changes_nothing(self, tmp_path, backend,
                                            controller):
        trace = tmp_path / "run.trace.json"
        prof = tmp_path / "run.pstats"
        sim = build_sim(backend, controller, telemetry=TelemetryConfig(
            metrics=True, trace=str(trace),
            profile="cprofile", profile_out=str(prof)))
        full = sim.run(horizon(backend))
        assert full == base_result(backend, controller)
        tel = full.telemetry
        assert isinstance(tel, Telemetry)
        assert tel.backend == backend
        assert tel.hours == tuple(range(horizon(backend)))
        assert tel.spans >= horizon(backend)  # at least the hour spans
        assert json.loads(trace.read_text())["traceEvents"]
        pstats.Stats(str(prof))  # parses as a valid pstats dump
        assert tel.trace_path == str(trace)
        assert tel.profile_path == str(prof)
        assert "telemetry (" in tel.render()

    def test_off_path_installs_nothing(self):
        sim = build_sim("event")
        assert sim.telemetry is None
        assert sim.engine._obs is None
        assert not any(isinstance(o, ProgressObserver)
                       for o in sim.observers)
        assert sim.run(H).telemetry is None

    def test_metrics_series_shape(self):
        sim = build_sim("event", telemetry=TelemetryConfig(metrics=True))
        tel = sim.run(H).telemetry
        # One value per sampled hour for every series, counters
        # cumulative (monotone) where they should be.
        for name, col in tel.series.items():
            assert len(col) == H, name
        processed = tel.series["events_processed"]
        assert all(a <= b for a, b in zip(processed, processed[1:]))
        # The run-end total samples after the final drain, so it can
        # only ever be at or past the last hourly row.
        assert tel.totals["events_processed"] >= processed[-1]


# ----------------------------------------------------------------------
# trace schema and span invariants
# ----------------------------------------------------------------------
def trace_events(path):
    doc = json.loads(path.read_text())
    assert set(doc) == {"traceEvents", "displayTimeUnit"}
    return doc["traceEvents"]


class TestTrace:
    def test_schema_tiling_and_nesting(self, tmp_path):
        path = tmp_path / "event.trace.json"
        build_sim("event", telemetry=TelemetryConfig(
            trace=str(path))).run(H)
        events = trace_events(path)
        for e in events:
            assert {"name", "ph", "pid", "tid"} <= set(e)
            if e["ph"] == "X":
                assert e["ts"] >= 0 and e["dur"] >= 0
        hours = [e for e in events
                 if e["ph"] == "X" and e["name"] == "hour"]
        assert [e["args"]["t"] for e in hours] == list(range(H))
        # Hour spans tile the run: monotonic, no gaps, no overlaps.
        for a, b in zip(hours, hours[1:]):
            assert b["ts"] == pytest.approx(a["ts"] + a["dur"], abs=0.5)
        # Phase spans nest inside exactly one hour span.
        phases = [e for e in events
                  if e["ph"] == "X" and e.get("cat") == "phase"]
        assert {p["name"] for p in phases} >= {"consolidate", "requests"}
        for p in phases:
            assert sum(1 for h in hours
                       if h["ts"] - 0.5 <= p["ts"]
                       and p["ts"] + p["dur"] <= h["ts"] + h["dur"] + 0.5
                       ) == 1

    def test_shard_spans_merged_with_pid_tags(self, tmp_path):
        path = tmp_path / "sharded.trace.json"
        Simulation(shard_fleet(), "drowsy", "sharded", seed=3,
                   config=ShardedConfig(shards=4, inner="event",
                                        workers=0),
                   telemetry=TelemetryConfig(trace=str(path))
                   ).run(SHARD_H)
        events = trace_events(path)
        # Synthetic deterministic pids: coordinator 0, shard k -> k+1
        # (thread workers share one OS pid, so real pids won't do).
        assert {e["pid"] for e in events} == {0, 1, 2, 3, 4}
        names = {e["pid"]: e["args"]["name"] for e in events
                 if e["ph"] == "M"}
        assert names[0] == "driver"
        assert all(names[k + 1] == f"shard {k}" for k in range(4))
        for pid in range(5):
            lane = [e for e in events
                    if e["pid"] == pid and e["ph"] == "X"
                    and e["name"] == "hour"]
            assert [e["args"]["t"] for e in lane] == list(range(SHARD_H))
        # Coordinator phases cover the sharded hot spots.
        coord = {e["name"] for e in events
                 if e["pid"] == 0 and e.get("cat") == "phase"}
        assert coord >= {"shard-digests", "consolidate",
                         "observer-exchange"}


# ----------------------------------------------------------------------
# metrics across checkpoint/resume
# ----------------------------------------------------------------------
class TestCheckpointed:
    def test_metrics_survive_resume(self, tmp_path):
        base = base_result("event")
        sim = build_sim("event",
                        checkpoint=CheckpointPolicy(dir=str(tmp_path),
                                                    every_h=3),
                        telemetry=TelemetryConfig(metrics=True))
        full = sim.run(H)
        assert full == base
        assert full.telemetry.hours == tuple(range(H))
        assert full.telemetry.totals["checkpoint_writes"] == 3
        assert full.telemetry.totals["checkpoint_bytes"] > 0
        # Resume from the earliest snapshot: the result is still byte
        # identical and the restored recorder kept its pre-crash
        # samples, so the final telemetry covers every hour.
        earliest = sorted(tmp_path.glob("*.ckpt"))[0]
        resumed = Simulation.resume(earliest).run()
        assert resumed == base
        assert resumed.telemetry is not None
        assert resumed.telemetry.hours == tuple(range(H))


# ----------------------------------------------------------------------
# observer clock contract (the on_hour ``now`` fix)
# ----------------------------------------------------------------------
class WallRecorder(Observer):
    def __init__(self):
        self.nows = []

    def on_hour(self, t, now):
        self.nows.append(now)


class SimRecorder(WallRecorder):
    wants_sim_time = True


class TestObserverClock:
    def test_now_is_wall_clock_unless_opted_out(self):
        wall, simt = WallRecorder(), SimRecorder()
        before = time.time()
        Simulation(small_fleet(6), "drowsy", "hourly",
                   observers=(wall, simt)).run(6)
        after = time.time()
        # Observers get time.time() at the boundary, uniform across
        # backends; wants_sim_time opts into the engine's clock.
        assert len(wall.nows) == 6
        assert all(before <= now <= after for now in wall.nows)
        assert simt.nows == [time_of_hour(t) for t in range(6)]

    def test_hour_hook_routing(self):
        wall, simt = WallRecorder(), SimRecorder()
        assert isinstance(hour_hook(wall), WallClockHour)
        assert hour_hook(simt) == simt.on_hour
        # The adapter substitutes the wall clock for the sim clock.
        hour_hook(wall)(0, 3600.0)
        assert wall.nows[0] == pytest.approx(time.time(), abs=5.0)


# ----------------------------------------------------------------------
# fuzz: no telemetry config changes a result
# ----------------------------------------------------------------------
_fuzz_ids = itertools.count()


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(metrics=st.booleans(), trace=st.booleans(),
       profile=st.booleans(), progress=st.booleans())
def test_fuzz_configs_never_change_results(tmp_path, metrics, trace,
                                           profile, progress):
    n = next(_fuzz_ids)
    cfg = TelemetryConfig(
        metrics=metrics,
        trace=str(tmp_path / f"t{n}.json") if trace else None,
        profile="cprofile" if profile else None,
        profile_out=str(tmp_path / f"p{n}.pstats"),
        progress=progress)
    sim = Simulation(small_fleet(6), "drowsy", "hourly", telemetry=cfg)
    result = sim.run(6)
    assert result == Simulation(small_fleet(6), "drowsy", "hourly").run(6)
    assert (result.telemetry is not None) == cfg.enabled


# ----------------------------------------------------------------------
# config, defaults, persistence
# ----------------------------------------------------------------------
class TestConfig:
    def test_unknown_profiler_rejected(self):
        with pytest.raises(ValueError, match="cprofile"):
            TelemetryConfig(profile="perf")

    def test_disabled_config_installs_nothing(self):
        sim = build_sim("hourly", telemetry=TelemetryConfig())
        assert sim.telemetry is None

    def test_default_staged_and_paths_uniquified(self, tmp_path):
        set_default_telemetry(TelemetryConfig(
            trace=str(tmp_path / "run.trace.json")))
        try:
            a = Simulation(small_fleet(6), "drowsy", "hourly")
            b = Simulation(small_fleet(6), "drowsy", "hourly")
            assert a.telemetry.config.trace.endswith("run.trace.json")
            assert b.telemetry.config.trace.endswith("run-2.trace.json")
        finally:
            set_default_telemetry(None)
        assert Simulation(small_fleet(6), "drowsy",
                          "hourly").telemetry is None

    def test_result_persistence_drops_telemetry(self, tmp_path):
        result = build_sim("hourly", telemetry=TelemetryConfig(
            metrics=True)).run(H)
        assert result.telemetry is not None
        out = tmp_path / "result.csv"
        result.save(out)
        loaded = RunResult.load(out)
        assert loaded.telemetry is None
        assert loaded == result  # telemetry is outside equality

    def test_recorder_backfills_new_keys(self):
        rec = MetricsRecorder()
        rec.sample_hour(0, {"a": 1})
        rec.sample_hour(1, {"a": 2, "b": 5})
        rec.sample_hour(2, {"b": 6})
        assert rec.hours == [0, 1, 2]
        assert rec.series == {"a": [1, 2, 2], "b": [0, 5, 6]}


# ----------------------------------------------------------------------
# progress (satellite: opt-in, TTY-gated, results untouched)
# ----------------------------------------------------------------------
class FakeTty(io.StringIO):
    def isatty(self):
        return True


class TestProgress:
    def test_observer_draws_and_changes_nothing(self):
        stream = FakeTty()
        obs = ProgressObserver(stream=stream, min_interval_s=0.0)
        result = Simulation(small_fleet(), "drowsy", "hourly", seed=3,
                            observers=(obs,)).run(H)
        assert result == base_result("hourly")
        assert f"hour {H}/{H}" in stream.getvalue()

    def test_non_tty_writes_nothing(self):
        stream = io.StringIO()
        obs = ProgressObserver(stream=stream, min_interval_s=0.0)
        Simulation(small_fleet(6), "drowsy", "hourly",
                   observers=(obs,)).run(6)
        assert stream.getvalue() == ""

    def test_progress_line_tty_gate(self):
        tty, plain = FakeTty(), io.StringIO()
        progress_line(1, 4, time.time() - 2.0, stream=tty)
        assert "cells 1/4" in tty.getvalue()
        progress_line(1, 4, time.time() - 2.0, stream=plain)
        assert plain.getvalue() == ""

    def test_sweep_runner_progress(self, monkeypatch):
        cells = grid(controllers=("drowsy",), sizes=(8,), seeds=(7,),
                     hours=6)
        plain = SweepRunner().run(cells)
        stream = FakeTty()
        monkeypatch.setattr("sys.stderr", stream)
        shown = SweepRunner(progress=True).run(cells)
        assert shown == plain
        assert "cells 1/1" in stream.getvalue()
