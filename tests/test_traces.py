"""Tests for trace generation and the quanta noise filter."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.traces import (
    ActivityTrace,
    QuantaSample,
    VMKind,
    always_idle_trace,
    build_trace,
    comic_strips_trace,
    daily_backup_trace,
    fig1_traces,
    filter_activity,
    google_llmu_fleet,
    google_llmu_trace,
    llmu_trace,
    observed_activity,
    production_trace,
    seasonal_results_trace,
    slmu_trace,
    synthesize_quanta,
    trace_matrix,
    weekly_pattern_trace,
)
# Aliased so pytest does not collect the imported helper as a test.
from repro.traces import testbed_llmi_traces as make_testbed_llmi_traces


class TestActivityTrace:
    def test_validation_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            ActivityTrace("bad", np.array([0.5, 1.2]))

    def test_validation_rejects_empty(self):
        with pytest.raises(ValueError):
            ActivityTrace("bad", np.array([]))

    def test_validation_rejects_2d(self):
        with pytest.raises(ValueError):
            ActivityTrace("bad", np.zeros((2, 2)))

    def test_idle_fraction(self):
        tr = ActivityTrace("t", np.array([0.0, 0.0, 0.5, 0.5]))
        assert tr.idle_fraction == 0.5
        assert tr.mean_active_level == 0.5

    def test_periodic_extension(self):
        tr = ActivityTrace("t", np.array([0.1, 0.0]))
        assert tr.activity(0) == pytest.approx(0.1)
        assert tr.activity(2) == pytest.approx(0.1)
        assert tr.activity(5) == pytest.approx(0.0)

    def test_window_wraps(self):
        tr = ActivityTrace("t", np.array([0.1, 0.2, 0.3]))
        np.testing.assert_allclose(tr.window(2, 3), [0.3, 0.1, 0.2])

    def test_tiled_length(self):
        tr = daily_backup_trace(days=2)
        assert tr.tiled(100).hours == 100

    def test_trace_matrix_shape(self):
        traces = [daily_backup_trace(days=2), always_idle_trace(24)]
        M = trace_matrix(traces, 72)
        assert M.shape == (2, 72)


class TestSyntheticTraces:
    def test_daily_backup_active_only_at_backup_hour(self):
        tr = daily_backup_trace(days=10, backup_hour=2)
        A = tr.activities.reshape(10, 24)
        assert np.all(A[:, 2] > 0)
        mask = np.ones(24, bool)
        mask[2] = False
        assert np.all(A[:, mask] == 0)

    def test_comic_strips_holiday_months_idle(self):
        tr = comic_strips_trace(years=1)
        from repro.core.calendar import slots_of_hours

        h, dw, dm, m, doy = slots_of_hours(np.arange(tr.hours))
        in_holidays = np.isin(m, (6, 7))
        assert np.all(tr.activities[in_holidays] == 0)
        # Publications happen on Mon/Wed/Fri mornings outside holidays.
        pub = np.isin(dw, (0, 2, 4)) & np.isin(h, (8, 9, 10)) & ~in_holidays
        assert np.all(tr.activities[pub] > 0)

    def test_seasonal_results_one_day_per_year(self):
        tr = seasonal_results_trace(years=1)
        active_hours = np.nonzero(tr.activities)[0]
        assert len(active_hours) == 2  # two hours, one day per year
        from repro.core.calendar import slot_of_hour

        s = slot_of_hour(int(active_hours[0]))
        assert s.month == 6 and s.day_of_month == 19

    def test_llmu_never_idle(self):
        tr = llmu_trace(hours=24 * 30)
        assert tr.idle_fraction == 0.0
        assert tr.kind is VMKind.LLMU

    def test_slmu_shape(self):
        tr = slmu_trace(lifetime_hours=5, total_hours=10)
        assert np.all(tr.activities[:5] > 0)
        assert np.all(tr.activities[5:] == 0)
        assert tr.kind is VMKind.SLMU

    def test_slmu_lifetime_validation(self):
        with pytest.raises(ValueError):
            slmu_trace(lifetime_hours=5, total_hours=3)

    def test_weekly_pattern(self):
        tr = weekly_pattern_trace("w", {0: (9, 10)}, weeks=2)
        A = tr.activities.reshape(14, 24)
        assert np.all(A[0, [9, 10]] > 0)  # Monday
        assert np.all(A[1] == 0)          # Tuesday

    def test_build_trace_requires_rng_for_stochastic(self):
        with pytest.raises(ValueError):
            build_trace("x", 24, lambda h, dw, dm, m, doy: h == 0, p_extra=0.1)

    def test_build_trace_rejects_bad_mask(self):
        with pytest.raises(ValueError):
            build_trace("x", 24, lambda h, dw, dm, m, doy: np.ones(5, bool))


class TestProductionTraces:
    def test_deterministic_with_seed(self):
        a = production_trace(1, days=7, seed=5)
        b = production_trace(1, days=7, seed=5)
        np.testing.assert_array_equal(a.activities, b.activities)

    def test_different_indices_differ(self):
        a = production_trace(1, days=7, seed=5)
        b = production_trace(2, days=7, seed=5)
        assert not np.array_equal(a.activities, b.activities)

    def test_index_range(self):
        with pytest.raises(ValueError):
            production_trace(0)
        with pytest.raises(ValueError):
            production_trace(6)

    def test_llmi_mostly_idle(self):
        for i in range(1, 6):
            tr = production_trace(i, days=28)
            assert tr.idle_fraction > 0.7, tr.name
            assert tr.kind is VMKind.LLMI

    def test_fig1_vm3_vm4_identical(self):
        traces = fig1_traces(days=6)
        np.testing.assert_array_equal(traces["VM3"].activities,
                                      traces["VM4"].activities)
        assert not np.array_equal(traces["VM3"].activities,
                                  traces["VM6"].activities)

    def test_testbed_suite(self):
        suite = make_testbed_llmi_traces(days=7)
        assert [t.name for t in suite] == ["V3", "V4", "V5", "V6", "V7", "V8"]
        np.testing.assert_array_equal(suite[0].activities, suite[1].activities)

    def test_end_of_month_activity(self):
        tr = production_trace(5, days=62, seed=1)
        from repro.core.calendar import slots_of_hours

        h, dw, dm, m, doy = slots_of_hours(np.arange(tr.hours))
        eom = (dm >= 27) & (h >= 9) & (h <= 17)
        # End-of-month hours are mostly active regardless of weekday.
        assert tr.activities[eom].mean() > 0.1


class TestGoogleTraces:
    def test_always_active(self):
        tr = google_llmu_trace(hours=24 * 14, seed=1)
        assert tr.idle_fraction == 0.0

    def test_fleet_size_and_determinism(self):
        fleet = google_llmu_fleet(5, hours=48, seed=2)
        fleet2 = google_llmu_fleet(5, hours=48, seed=2)
        assert len(fleet) == 5
        for a, b in zip(fleet, fleet2):
            np.testing.assert_array_equal(a.activities, b.activities)

    def test_ar_coeff_validation(self):
        with pytest.raises(ValueError):
            google_llmu_trace(hours=10, ar_coeff=1.0)

    def test_diurnal_structure(self):
        """Afternoon load exceeds pre-dawn load on average."""
        tr = google_llmu_trace(hours=24 * 60, seed=3)
        A = tr.activities.reshape(60, 24)
        assert A[:, 14].mean() > A[:, 2].mean()


class TestQuantaNoise:
    def test_filter_drops_short_quanta(self):
        sample = QuantaSample(np.array([30.0, 0.001, 0.002, 60.0]))
        assert filter_activity(sample) == pytest.approx(90.0 / 3600.0)

    def test_raw_activity_counts_everything(self):
        sample = QuantaSample(np.array([30.0, 0.001]))
        assert sample.raw_activity == pytest.approx(30.001 / 3600.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            QuantaSample(np.array([-1.0]))
        with pytest.raises(ValueError):
            QuantaSample(np.array([3601.0]))

    def test_idle_hour_with_noise_reads_zero(self):
        """The paper's core requirement: noise does not mask idleness."""
        rng = np.random.default_rng(0)
        assert observed_activity(0.0, rng) == 0.0

    @settings(max_examples=25, deadline=None)
    @given(st.floats(min_value=1e-4, max_value=1.0))
    def test_roundtrip_preserves_activity(self, activity):
        # Activities below the noise quantum (~0.05 s of work per hour)
        # are indistinguishable from noise by design, so start above it.
        rng = np.random.default_rng(42)
        sample = synthesize_quanta(activity, rng)
        recovered = filter_activity(sample)
        assert recovered == pytest.approx(activity, abs=1e-6)

    def test_subnoise_work_reads_idle(self):
        """Work below the noise quantum is filtered — by design."""
        rng = np.random.default_rng(42)
        assert filter_activity(synthesize_quanta(1e-6, rng)) == 0.0

    def test_synthesize_rejects_bad_activity(self):
        with pytest.raises(ValueError):
            synthesize_quanta(1.5, np.random.default_rng(0))
