"""Scenario engine tests (DESIGN.md §12).

The acceptance contract: every built-in scenario runs deterministically
under both simulators (same spec + seed ⇒ identical result tables), a
scenario × controller × seed grid sharded over workers is byte-identical
to the serial run, and the churn sequence — drawn from a scenario-keyed
Philox stream — is the same under both simulators.
"""

import numpy as np
import pytest

from repro.cluster.power import PowerState
from repro.network.requests import ArrivalShape, RequestProfile
from repro.scenarios import (
    ChurnSpec,
    HostClass,
    MaintenanceWindow,
    ScenarioCell,
    ScenarioCompiler,
    ScenarioSpec,
    ScenarioTable,
    TraceSpec,
    VMClass,
    get_scenario,
    list_scenarios,
    run_scenario_cell,
    run_scenario_sweep,
    scenario_grid,
    stable_seed,
)
from repro.traces.replay import trace_from_csv

SMALL = dict(scale=0.25, hours=12)


def small_cells(simulator, scenarios=None, controllers=("drowsy",),
                seeds=(0,)):
    names = scenarios or [s.name for s in list_scenarios()]
    return scenario_grid(names, controllers=controllers, seeds=seeds,
                         simulator=simulator, **SMALL)


# ----------------------------------------------------------------------
# specs
# ----------------------------------------------------------------------

class TestSpecs:
    def test_registry_has_at_least_six(self):
        assert len(list_scenarios()) >= 6

    def test_unknown_scenario_rejected(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            get_scenario("nope")
        with pytest.raises(KeyError):
            scenario_grid(["nope"])

    def test_spec_validation(self):
        host = HostClass("h", count=1)
        vm = VMClass("v", count=1)
        with pytest.raises(ValueError, match="host and VM classes"):
            ScenarioSpec("s", "d", hosts=(), vms=(vm,))
        with pytest.raises(ValueError, match="duplicate VM classes"):
            ScenarioSpec("s", "d", hosts=(host,), vms=(vm, vm))
        with pytest.raises(ValueError, match="arrival_class"):
            ScenarioSpec("s", "d", hosts=(host,), vms=(vm,),
                         churn=ChurnSpec(vm_arrivals_per_h=1.0,
                                         arrival_class="ghost"))
        with pytest.raises(ValueError, match="out of range"):
            ScenarioSpec("s", "d", hosts=(host,), vms=(vm,),
                         churn=ChurnSpec(maintenance=(
                             MaintenanceWindow(5, 0, 1),)))

    def test_overlapping_maintenance_windows_rejected(self):
        """The injector tracks hosts, not windows: overlap would let the
        first window to end cancel maintenance for the rest."""
        host = HostClass("h", count=2)
        vm = VMClass("v", count=1)
        with pytest.raises(ValueError, match="overlapping maintenance"):
            ScenarioSpec("s", "d", hosts=(host,), vms=(vm,),
                         churn=ChurnSpec(maintenance=(
                             MaintenanceWindow(0, 1, 6),
                             MaintenanceWindow(0, 2, 2))))
        # Back-to-back windows on one host are fine.
        ScenarioSpec("s", "d", hosts=(host,), vms=(vm,),
                     churn=ChurnSpec(maintenance=(
                         MaintenanceWindow(0, 1, 2),
                         MaintenanceWindow(0, 3, 2))))

    def test_trace_spec_validation(self):
        with pytest.raises(ValueError, match="unknown trace generator"):
            TraceSpec(generator="fancy")
        with pytest.raises(ValueError, match="csv"):
            TraceSpec(generator="csv")

    def test_trace_build_is_name_keyed(self):
        spec = TraceSpec(generator="production", index=2)
        a = spec.build("vm-a", 0, 168, seed=1)
        b = spec.build("vm-a", 7, 168, seed=1)  # ordinal must not matter
        c = spec.build("vm-b", 0, 168, seed=1)
        assert np.array_equal(a.activities, b.activities)
        assert not np.array_equal(a.activities, c.activities)

    def test_trace_generators_cover_horizon(self):
        for gen in ("production", "google-llmu", "llmu", "backup",
                    "weekly", "always-idle"):
            trace = TraceSpec(generator=gen).build("x", 0, 100, seed=0)
            assert trace.hours >= 100
            assert trace.name == "x"

    def test_csv_trace_generator(self):
        spec = TraceSpec(generator="csv", csv="activity\n0.0\n0.5\n")
        trace = spec.build("x", 0, 4, seed=0)
        assert trace.activities.tolist() == [0.0, 0.5]
        assert trace.activity(3) == 0.5  # periodic extension

    def test_scaled_floors_at_one_per_class(self):
        spec = get_scenario("diurnal-office").scaled(0.01)
        assert all(c.count == 1 for c in spec.hosts)
        assert all(c.count == 1 for c in spec.vms)
        down = get_scenario("maintenance-churn").scaled(0.1)
        assert all(w.host_index < down.n_hosts
                   for w in down.churn.maintenance)

    def test_scaled_drops_windows_clamped_into_collision(self):
        """Disjoint windows on different hosts can land on the same
        host at fractional scale — the smaller fleet sees less
        maintenance rather than a validation error."""
        spec = ScenarioSpec(
            "wide", "d", hosts=(HostClass("h", count=8),),
            vms=(VMClass("v", count=4),),
            churn=ChurnSpec(maintenance=(
                MaintenanceWindow(0, 10, 8),
                MaintenanceWindow(4, 10, 8),
                MaintenanceWindow(6, 30, 8))))
        down = spec.scaled(0.1)  # one host: the twin window must go
        assert down.n_hosts == 1
        starts = [(w.host_index, w.start_hour)
                  for w in down.churn.maintenance]
        assert starts == [(0, 10), (0, 30)]

    def test_stable_seed_is_stable(self):
        assert stable_seed(1, "trace", "vm") == stable_seed(1, "trace", "vm")
        assert stable_seed(1, "a") != stable_seed(1, "b")


# ----------------------------------------------------------------------
# arrival shaping
# ----------------------------------------------------------------------

class TestArrivalShaping:
    def test_shape_validation(self):
        with pytest.raises(ValueError, match="unknown arrival shape"):
            ArrivalShape(kind="squiggle")
        with pytest.raises(ValueError, match="factors"):
            ArrivalShape(kind="replay")

    def test_diurnal_peaks_at_phase(self):
        shape = ArrivalShape(kind="diurnal", amplitude=0.5, phase_h=15.0)
        factors = shape.factors_for(0, 24)
        assert int(np.argmax(factors)) == 15

    def test_weekly_damps_weekends(self):
        shape = ArrivalShape(kind="weekly", weekend_factor=0.25)
        # Calendar epoch is a Monday: hour 15 of day 5 is a Saturday.
        assert shape.rate_factor(5 * 24 + 15) == pytest.approx(
            0.25 * shape.rate_factor(15))

    def test_flash_bursts(self):
        shape = ArrivalShape(kind="flash", burst_period_h=10, burst_len_h=2,
                             burst_factor=4.0)
        factors = shape.factors_for(0, 10)
        assert factors.tolist() == [4.0, 4.0] + [1.0] * 8

    def test_replay_cycles(self):
        shape = ArrivalShape.from_csv("hour,rate\n0,1.0\n1,3.0\n")
        assert shape.rate_factor(0) == 1.0
        assert shape.rate_factor(3) == 3.0

    def test_unshaped_profile_is_bit_identical(self):
        """shape=None (the default everywhere outside scenarios) must
        not perturb a single RNG draw."""
        plain = RequestProfile()
        explicit = RequestProfile(shape=None)
        a = plain.hourly_arrivals(np.random.default_rng(7), 0.0, 0.5)
        b = explicit.hourly_arrivals(np.random.default_rng(7), 0.0, 0.5,
                                     hour_index=42)
        assert np.array_equal(a, b)

    def test_zero_factor_hour_silences_vm(self):
        profile = RequestProfile(shape=ArrivalShape(
            kind="replay", factors=(0.0, 1.0)))
        rng = np.random.default_rng(7)
        assert profile.hourly_arrivals(rng, 0.0, 0.9, hour_index=0).size == 0
        assert profile.hourly_arrivals(rng, 0.0, 0.9, hour_index=1).size > 0

    def test_flash_hour_raises_traffic(self):
        shape = ArrivalShape(kind="flash", burst_period_h=24, burst_len_h=1,
                             burst_factor=10.0)
        profile = RequestProfile(peak_rate_per_s=0.05, shape=shape)
        burst = profile.hourly_arrivals(
            np.random.default_rng(1), 0.0, 1.0, hour_index=0).size
        calm = profile.hourly_arrivals(
            np.random.default_rng(1), 0.0, 1.0, hour_index=12).size
        assert burst > 2 * calm


# ----------------------------------------------------------------------
# determinism acceptance
# ----------------------------------------------------------------------

class TestDeterminism:
    @pytest.mark.parametrize("simulator", ["hourly", "event"])
    def test_all_builtins_run_deterministically(self, simulator):
        """Same spec + seed ⇒ identical result tables, for every
        built-in scenario, under both simulators."""
        cells = small_cells(simulator)
        first = run_scenario_sweep(cells, workers=1)
        second = run_scenario_sweep(cells, workers=1)
        assert first.to_csv() == second.to_csv()

    def test_sharded_table_byte_identical_to_serial(self):
        cells = small_cells("hourly", controllers=("drowsy", "neat"),
                            seeds=(0, 3))
        serial = run_scenario_sweep(cells, workers=1)
        sharded = run_scenario_sweep(cells, workers=2)
        assert serial.to_csv() == sharded.to_csv()

    def test_sharded_event_cells_byte_identical(self):
        cells = small_cells("event",
                            scenarios=["dev-churn", "flash-crowd"],
                            seeds=(0, 1))
        serial = run_scenario_sweep(cells, workers=1)
        sharded = run_scenario_sweep(cells, workers=2)
        assert serial.to_csv() == sharded.to_csv()

    @pytest.mark.parametrize("name", ["dev-churn", "maintenance-churn"])
    def test_cross_simulator_shared_quantities(self, name):
        """The churn sequence and fleet shape are simulator-independent:
        both simulators see the same arrivals, departures and (for these
        scenarios) the same consolidation decisions."""
        rows = {}
        for simulator in ("hourly", "event"):
            rows[simulator] = run_scenario_cell(ScenarioCell(
                scenario=name, controller="drowsy", seed=1,
                simulator=simulator, scale=0.5, hours=48))
        h, e = rows["hourly"], rows["event"]
        assert (h.n_hosts, h.n_vms) == (e.n_hosts, e.n_vms)
        assert (h.vms_added, h.vms_removed) == (e.vms_added, e.vms_removed)
        assert h.migrations == e.migrations


# ----------------------------------------------------------------------
# compiler + churn mechanics
# ----------------------------------------------------------------------

class TestCompiler:
    def test_heterogeneous_fleet_respects_capacity(self):
        run = ScenarioCompiler(
            get_scenario("heterogeneous-fleet").scaled(0.5)).compile(seed=2)
        run.dc.check_invariants()
        # Fat VMs only fit the big host class.
        for host in run.dc.hosts:
            for vm in host.vms:
                assert vm.resources.memory_mb <= host.capacity.memory_mb

    def test_overfull_scenario_rejected(self):
        spec = ScenarioSpec(
            "tight", "d", hosts=(HostClass("h", count=1),),
            vms=(VMClass("v", count=9),))  # 9 x 8 GB into one 32 GB host
        with pytest.raises(ValueError, match="does not fit"):
            ScenarioCompiler(spec).build_datacenter(seed=0)

    def test_unknown_simulator_rejected(self):
        with pytest.raises(ValueError, match="unknown simulator"):
            ScenarioCompiler(get_scenario("steady-llmu")).compile(
                simulator="quantum")

    def test_maintenance_window_drains_and_restores(self):
        spec = ScenarioSpec(
            "maint", "d", hosts=(HostClass("h", count=3),),
            vms=(VMClass("v", count=4,
                         trace=TraceSpec(generator="llmu")),),
            horizon_hours=12,
            churn=ChurnSpec(maintenance=(MaintenanceWindow(0, 2, 4),)))
        run = ScenarioCompiler(spec).compile(controller="neat",
                                             simulator="hourly", seed=0)
        target = run.dc.hosts[0]
        states = {}
        original_hook = run.churn.hook

        def spy(t, now):
            original_hook(t, now)
            states[t] = (target.state, len(target.vms))

        run.sim.hour_hooks = (spy,)
        run.run()
        # Drained and off during the window, repopulatable after it.
        assert states[2] == (PowerState.OFF, 0)
        assert states[4] == (PowerState.OFF, 0)
        assert states[6][0] is not PowerState.OFF
        assert run.churn.vms_evacuated > 0

    @pytest.mark.parametrize("simulator", ["hourly", "event"])
    def test_evacuation_wakes_drowsy_destination(self, simulator):
        """When the only evacuation target is suspended, the fallback
        destination is woken so the evacuated VM actually runs — the
        event simulator has no hourly power step to notice otherwise."""
        spec = ScenarioSpec(
            "sleepy-maint", "d", hosts=(HostClass("h", count=2),),
            vms=(VMClass("quiet", count=2,
                         trace=TraceSpec(generator="weekly", weekdays=(0,),
                                         hours_of_day=(9,), level=0.3),
                         interactive=False),),
            horizon_hours=10,
            churn=ChurnSpec(maintenance=(MaintenanceWindow(0, 3, 4),)))
        run = ScenarioCompiler(spec).compile(
            controller="neat", simulator=simulator, seed=0)
        source, dest = run.dc.hosts
        # One VM per host (rotating first-fit over two hosts); put the
        # destination to sleep, then open the source's window directly.
        assert source.vms and dest.vms
        dest.begin_suspend(0.0)
        dest.finish_suspend(0.0)
        run.churn._begin_maintenance(source, 0.0)
        assert run.churn.vms_evacuated == 1
        assert not source.vms and len(dest.vms) == 2
        assert dest.state is PowerState.ON  # woken for its new VM
        assert source.state is PowerState.OFF  # drained and parked

    def test_back_to_back_windows_order_independent(self):
        """A window ending exactly when the next begins must end first,
        however the spec happens to list the windows."""
        host = HostClass("h", count=2)
        vm = VMClass("v", count=1, trace=TraceSpec(generator="llmu"))
        results = []
        for windows in ((MaintenanceWindow(0, 1, 2),
                         MaintenanceWindow(0, 3, 2)),
                        (MaintenanceWindow(0, 3, 2),
                         MaintenanceWindow(0, 1, 2))):
            spec = ScenarioSpec(
                "b2b", "d", hosts=(host,), vms=(vm,), horizon_hours=8,
                churn=ChurnSpec(maintenance=windows))
            run = ScenarioCompiler(spec).compile(controller="neat", seed=0)
            target = run.dc.hosts[0]
            states = {}
            hook = run.churn.hook

            def spy(t, now, hook=hook, states=states, target=target):
                hook(t, now)
                states[t] = target.state
            run.sim.hour_hooks = (spy,)
            run.run()
            # In maintenance (and tracked) for the whole 1..5 span.
            assert states[2] is PowerState.OFF
            assert states[3] is PowerState.OFF
            assert states[4] is PowerState.OFF
            results.append(states)
        assert results[0] == results[1]

    def test_active_arrival_wakes_drowsy_destination(self):
        """A non-interactive churn arrival with activity must wake its
        host: nothing else (no request, no hourly power step) would."""
        spec = ScenarioSpec(
            "night-shift", "d", hosts=(HostClass("h", count=1),),
            vms=(VMClass("batch", count=1, ephemeral=True,
                         interactive=False,
                         trace=TraceSpec(generator="llmu",
                                         base_level=0.8)),),
            horizon_hours=8,
            churn=ChurnSpec(vm_arrivals_per_h=2.0, arrival_class="batch"))
        run = ScenarioCompiler(spec).compile(controller="neat",
                                             simulator="event", seed=1)
        host = run.dc.hosts[0]
        # Simulate the state mid-run: host drowsy, then an arrival hour.
        host.begin_suspend(0.0)
        host.finish_suspend(0.0)
        before = run.churn.vms_added
        run.churn.hook(0, 0.0)
        assert run.churn.vms_added > before  # rate 2/h: arrivals landed
        assert host.state is PowerState.ON   # woken for the active VM

    def test_churn_arrivals_capped(self):
        spec = ScenarioSpec(
            "burst", "d", hosts=(HostClass("h", count=2),),
            vms=(VMClass("v", count=2, ephemeral=True,
                         trace=TraceSpec(generator="llmu")),),
            horizon_hours=24,
            churn=ChurnSpec(vm_arrivals_per_h=5.0, arrival_class="v",
                            max_extra_vms=3))
        run = ScenarioCompiler(spec).compile(controller="neat", seed=0)
        run.run()
        assert run.churn.vms_added == 3
        assert run.churn.arrivals_dropped > 0

    def test_departures_only_touch_ephemeral_vms(self):
        spec = ScenarioSpec(
            "drain", "d", hosts=(HostClass("h", count=2),),
            vms=(VMClass("keep", count=2,
                         trace=TraceSpec(generator="llmu")),
                 VMClass("tmp", count=4, ephemeral=True,
                         trace=TraceSpec(generator="llmu"))),
            horizon_hours=24,
            churn=ChurnSpec(vm_departures_per_h=2.0))
        run = ScenarioCompiler(spec).compile(controller="neat", seed=0)
        run.run()
        names = {vm.name for vm in run.dc.vms}
        assert {"keep-000", "keep-001"} <= names
        assert run.churn.vms_removed == 4  # every ephemeral VM, eventually

    def test_event_churn_run_with_requests_is_clean(self):
        """Departing interactive VMs must not fault the request path
        (their already-scheduled arrivals fall through)."""
        spec = ScenarioSpec(
            "live", "d", hosts=(HostClass("h", count=2),),
            vms=(VMClass("web", count=6, ephemeral=True,
                         trace=TraceSpec(generator="google-llmu")),),
            horizon_hours=8, request_peak_rate_per_s=0.05,
            churn=ChurnSpec(vm_arrivals_per_h=1.0, vm_departures_per_h=1.0,
                            arrival_class="web"))
        run = ScenarioCompiler(spec).compile(controller="neat",
                                             simulator="event", seed=3)
        result = run.run()
        assert result.request_summary["requests"] > 0
        assert run.churn.vms_removed > 0


# ----------------------------------------------------------------------
# tables
# ----------------------------------------------------------------------

class TestScenarioTable:
    def make_table(self):
        cells = small_cells("hourly", scenarios=["steady-llmu"])
        return run_scenario_sweep(cells)

    def test_csv_round_trip(self):
        table = self.make_table()
        assert ScenarioTable.from_csv(table.to_csv()).rows == table.rows

    def test_sqlite_round_trip(self, tmp_path):
        table = self.make_table()
        path = tmp_path / "scen.sqlite"
        table.save(path)
        assert ScenarioTable.load(path).rows == table.rows
        # Appends runs, does not clobber: base-class behaviour holds.
        table.save(path)
        assert ScenarioTable.from_sqlite(path, run=0).rows == table.rows

    def test_render_mentions_every_scenario(self):
        table = self.make_table()
        assert "steady-llmu" in table.render()


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

class TestScenarioCLI:
    def test_list(self, capsys):
        from repro.cli import main

        assert main(["scenario", "list"]) == 0
        out = capsys.readouterr().out
        for spec in list_scenarios():
            assert spec.name in out

    def test_run_both_simulators(self, capsys):
        from repro.cli import main

        assert main(["scenario", "run", "steady-llmu", "--simulator",
                     "both", "--scale", "0.2", "--hours", "6"]) == 0
        out = capsys.readouterr().out
        assert "[hourly]" in out and "[event]" in out

    def test_sweep_writes_table(self, capsys, tmp_path):
        from repro.cli import main

        out_csv = tmp_path / "scen.csv"
        assert main(["scenario", "sweep", "--scenarios",
                     "steady-llmu,seasonal-quiet", "--controllers", "drowsy",
                     "--scale", "0.25", "--hours", "6",
                     "--out", str(out_csv)]) == 0
        table = ScenarioTable.load(out_csv)
        assert {r.scenario for r in table.rows} == {
            "steady-llmu", "seasonal-quiet"}

    def test_sweep_rejects_unknown_scenario(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="unknown scenario"):
            main(["scenario", "sweep", "--scenarios", "nope"])

    def test_run_fails_fast_on_typos(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="unknown scenario"):
            main(["scenario", "run", "nope"])
        with pytest.raises(SystemExit, match="unknown controller"):
            main(["scenario", "run", "steady-llmu", "--controller", "bogus"])
        # One controller only: a comma list must fail validation too,
        # not blow up in the cell runner after a partial run.
        with pytest.raises(SystemExit, match="unknown controller"):
            main(["scenario", "run", "steady-llmu",
                  "--controller", "drowsy,neat"])


# ----------------------------------------------------------------------
# CSV replay
# ----------------------------------------------------------------------

class TestCsvReplay:
    def test_trace_from_file(self, tmp_path):
        path = tmp_path / "load.csv"
        path.write_text("hour,activity\n0,0.0\n1,0.25\n2,0.5\n")
        trace = trace_from_csv(path)
        assert trace.name == "load"
        assert trace.activities.tolist() == [0.0, 0.25, 0.5]

    def test_bad_value_rejected(self):
        with pytest.raises(ValueError, match="non-numeric"):
            trace_from_csv("0.1\nbogus\n")

    def test_header_after_blank_line_tolerated(self):
        trace = trace_from_csv("\nactivity\n0.5\n")
        assert trace.activities.tolist() == [0.5]

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="no hourly values"):
            trace_from_csv("activity\n\n")

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            trace_from_csv("0.5\n1.5\n")
