"""Sharded distributed backend (DESIGN.md §15) and the serializable
spec/result API that rides with it.

The heart of the suite is the golden parity contract: a sharded run is
**byte-identical** to its inner backend for every shard and worker
count — same energy floats, same migration records, same latency
digests, same fault summaries.  Around it: the waking-plane guard
(cross-shard waking interactions raise ``ShardError`` instead of
silently diverging), the not-shardable rejections, scenario-spec JSON
round-trips, result persistence, and the registry describe/CLI list
surface.
"""

import dataclasses
import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.api import RunResult, ShardedConfig, Simulation, backends, controllers
from repro.api.observers import Observer
from repro.api.sharded.coordinator import ShardError
from repro.cluster.power import PowerState
from repro.cluster.vm import VM
from repro.experiments.common import FLEET_VM, build_fleet, production_trace
from repro.faults.spec import (
    FaultPlan,
    HostCrashFaults,
    TransitionFaults,
    WakingServiceFaults,
    WolFaults,
)
from repro.scenarios.registry import get_scenario, list_scenarios
from repro.scenarios.spec import ScenarioSpec
from repro.sim.event_driven import EventConfig
from repro.sim.hourly import HourlyConfig


def fleet(n_hosts=8, n_vms=24, hours=30, seed=3, unique_ips=True):
    """The parity fleet.  ``unique_ips`` widens the 250-address default
    IP space so no two VMs collide: collision-free fleets are provably
    inside the sharded backend's waking envelope (see the guard tests
    for what happens outside it)."""
    dc = build_fleet(n_hosts=n_hosts, n_vms=n_vms, llmi_fraction=0.5,
                     hours=hours, seed=seed)
    if unique_ips:
        for i, vm in enumerate(dc.vms):
            vm.ip_address = f"10.9.{i // 200}.{i % 200 + 1}"
    return dc


def plain_event(controller, seed, hours, **kw):
    # seed= is passed alongside the config so the fault injector (if
    # any) draws from the same stream family as the sharded run's.
    return Simulation(fleet(), controller, "event", seed=seed,
                      config=EventConfig(seed=seed,
                                         request_streams="per-vm"),
                      **kw).run(hours)


def sharded(controller, seed, hours, shards, workers=0, inner="event",
            **kw):
    return Simulation(fleet(), controller, "sharded", seed=seed,
                      backend_config=ShardedConfig(
                          shards=shards, workers=workers, inner=inner),
                      **kw).run(hours)


# ----------------------------------------------------------------------
# golden parity: sharded == inner backend, bit for bit
# ----------------------------------------------------------------------

class TestEventParity:
    @pytest.mark.parametrize("controller", ["drowsy", "neat"])
    @pytest.mark.parametrize("seed", [0, 9])
    def test_byte_identical_for_any_shard_count(self, controller, seed):
        hours = 12
        plain = plain_event(controller, seed, hours)
        for shards in (1, 4):
            s = sharded(controller, seed, hours, shards)
            assert s.backend == "sharded"
            assert dataclasses.replace(s, backend="event") == plain

    def test_shard_count_does_not_matter(self):
        a = sharded("drowsy", 2, 10, shards=2)
        b = sharded("drowsy", 2, 10, shards=5)
        assert dataclasses.replace(a, backend="x") == dataclasses.replace(
            b, backend="x")

    def test_process_workers_match_threads(self):
        # Real spawn workers: the wire format (pickled sub-fleets,
        # pipe frames) must not perturb a single float.
        threads = sharded("neat", 9, 8, shards=3, workers=0)
        procs = sharded("neat", 9, 8, shards=3, workers=2)
        assert threads == dataclasses.replace(procs)


class TestHourlyParity:
    @pytest.mark.parametrize("controller,shards",
                             [("drowsy", 4), ("neat", 3)])
    def test_byte_identical(self, controller, shards):
        hours = 24
        plain = Simulation(fleet(), controller, "hourly",
                           config=HourlyConfig()).run(hours)
        s = Simulation(fleet(), controller, "sharded",
                       backend_config=ShardedConfig(
                           shards=shards, inner="hourly")).run(hours)
        assert dataclasses.replace(s, backend="hourly") == plain


# ----------------------------------------------------------------------
# churn through the admin surface (scenario-style fleet surgery)
# ----------------------------------------------------------------------

class AdminChurn(Observer):
    """Deterministic churn exercising the full admin op vocabulary:
    arrivals (collision-free IPs), departures, maintenance drain with
    evacuation, power-off/power-on, force-awake and check
    reinstatement — the same calls a compiled scenario issues."""

    wants_sim_time = True  # churn feeds ``now`` into simulated state

    def on_run_start(self, sim, start_hour, n_hours):
        self.sim = sim
        self.extra = 0

    def on_hour(self, t, now):
        sim = self.sim
        dc = sim.dc
        hosts = sorted(dc.hosts, key=lambda h: h.name)
        if t % 6 == 2:
            for _ in range(2):
                name = f"extra-{self.extra:03d}"
                trace = production_trace(1 + self.extra % 3, days=3,
                                         seed=100 + self.extra)
                vm = VM(name, trace.with_name(name), FLEET_VM,
                        ip_address=f"10.8.0.{self.extra + 1}",
                        params=dc.params)
                self.extra += 1
                dest = next(h for h in hosts if h.can_host(vm))
                sim.place_vm(vm, dest)
                vm.current_activity = vm.activity_at(t)
            sim.rebind_fleet()
        if t % 8 == 5:
            victims = sorted(vm.name for vm in dc.vms
                             if vm.name.startswith("extra-"))[:1]
            for name in victims:
                vm, _ = dc.find_vm(name)
                dc.remove(vm, now)
                sim.note_vm_departed(name)
            if victims:
                sim.rebind_fleet()
        if t == 10:
            host = hosts[0]
            if host.state is not PowerState.ON:
                sim.force_awake(host, now)
            migrated, _ = sim.evacuate_host(host, now)
            for vm in migrated:
                dest = dc.host_of(vm)
                if dest.state is not PowerState.ON:
                    sim.force_awake(dest, now)
            if not host.vms and host.state is PowerState.ON:
                sim.power_off_host(host, now)
            sim.rebind_fleet()
        if t == 20:
            host = hosts[0]
            if host.state is PowerState.OFF:
                sim.power_on_host(host, now)
                sim.reinstate_check(host)
            sim.rebind_fleet()


class TestAdminChurnParity:
    def test_event_inner(self):
        hours = 24
        plain = plain_event("drowsy", 5, hours, observers=(AdminChurn(),))
        for shards in (1, 4):
            s = sharded("drowsy", 5, hours, shards,
                        observers=(AdminChurn(),))
            assert dataclasses.replace(s, backend="event") == plain

    def test_hourly_inner(self):
        hours = 24
        plain = Simulation(fleet(), "drowsy", "hourly",
                           config=HourlyConfig(),
                           observers=(AdminChurn(),)).run(hours)
        s = Simulation(fleet(), "drowsy", "sharded",
                       backend_config=ShardedConfig(shards=3,
                                                    inner="hourly"),
                       observers=(AdminChurn(),)).run(hours)
        assert dataclasses.replace(s, backend="hourly") == plain


# ----------------------------------------------------------------------
# fault plans (the shardable ones) ride along bit-identically
# ----------------------------------------------------------------------

CRASH_PLAN = FaultPlan(name="crashes", crashes=HostCrashFaults(
    rate_per_host_per_h=0.02, recover_after_s=1800.0, max_crashes=4))
LOSSY_PLAN = FaultPlan(name="lossy", wol=WolFaults(
    loss_probability=0.2, delay_probability=0.1, mean_delay_s=0.5))


class TestFaultParity:
    @pytest.mark.parametrize("plan", [CRASH_PLAN, LOSSY_PLAN],
                             ids=lambda p: p.name)
    def test_chaos_plans_byte_identical(self, plan):
        hours = 18
        plain = plain_event("drowsy", 5, hours, faults=plan)
        s = sharded("drowsy", 5, hours, shards=4, faults=plan)
        assert dataclasses.replace(s, backend="event") == plain
        assert s.fault_summary == plain.fault_summary
        assert s.fault_summary is not None


# ----------------------------------------------------------------------
# the waking-plane guard: refuse loudly, never diverge silently
# ----------------------------------------------------------------------

class TestWakingGuard:
    def _run(self):
        run = Simulation.from_scenario("dev-churn", seed=1,
                                       controller="drowsy",
                                       backend="sharded", shards=4,
                                       hours=24)
        return run.run()

    def test_cross_shard_waking_raises_shard_error(self):
        with pytest.raises(ShardError, match="cross-shard waking"):
            self._run()

    def test_refusal_is_deterministic(self):
        messages = []
        for _ in range(2):
            with pytest.raises(ShardError) as exc:
                self._run()
            messages.append(str(exc.value))
        assert messages[0] == messages[1]

    def test_shards_one_is_always_inside_the_envelope(self):
        # One shard == one waking plane: even colliding-IP churn runs
        # must succeed and match the plain event backend.
        plain = Simulation.from_scenario(
            "dev-churn", seed=1, controller="drowsy", backend="event",
            hours=24).run()
        single = Simulation.from_scenario(
            "dev-churn", seed=1, controller="drowsy", backend="sharded",
            shards=1, hours=24).run()
        assert dataclasses.replace(single, backend="event") == plain


# ----------------------------------------------------------------------
# not-shardable configurations are rejected before any shard runs
# ----------------------------------------------------------------------

class TestRejections:
    def small(self):
        return fleet(n_hosts=4, n_vms=8, hours=10, seed=1)

    def test_waking_faults(self):
        plan = FaultPlan(name="w", waking=WakingServiceFaults(
            kill_primary_at_h=1.0))
        with pytest.raises(ValueError, match="waking-service faults"):
            Simulation(self.small(), "drowsy", "sharded", seed=1,
                       backend_config=ShardedConfig(shards=2),
                       faults=plan).run(2)

    def test_resume_failures(self):
        plan = FaultPlan(name="r", transitions=TransitionFaults(
            resume_failure_probability=0.1))
        with pytest.raises(ValueError, match="resume failures"):
            Simulation(self.small(), "drowsy", "sharded", seed=1,
                       backend_config=ShardedConfig(shards=2),
                       faults=plan).run(2)

    def test_shared_request_streams(self):
        with pytest.raises(ValueError, match="per-vm"):
            Simulation(self.small(), "drowsy", "sharded",
                       backend_config=ShardedConfig(
                           shards=2,
                           inner_config=EventConfig(
                               seed=1, request_streams="shared"))).run(2)

    def test_per_host_sleep_veto_on_hourly_inner(self):
        with pytest.raises(ValueError, match="vetoes sleep"):
            Simulation(self.small(), "oasis", "sharded",
                       backend_config=ShardedConfig(
                           shards=2, inner="hourly")).run(2)

    def test_config_validation(self):
        with pytest.raises(ValueError, match="shards"):
            ShardedConfig(shards=0)
        with pytest.raises(ValueError, match="inner engine"):
            ShardedConfig(inner="analytic")


# ----------------------------------------------------------------------
# property fuzz: parity over arbitrary shard counts
# ----------------------------------------------------------------------

class TestShardCountFuzz:
    _plain_cache: dict = {}

    @classmethod
    def _plain(cls, controller, seed):
        key = (controller, seed)
        if key not in cls._plain_cache:
            dc = build_fleet(n_hosts=6, n_vms=12, llmi_fraction=0.5,
                             hours=8, seed=11)
            cls._plain_cache[key] = Simulation(
                dc, controller, "event",
                config=EventConfig(seed=seed,
                                   request_streams="per-vm")).run(6)
        return cls._plain_cache[key]

    @settings(max_examples=8, deadline=None)
    @given(shards=st.integers(min_value=1, max_value=8),
           controller=st.sampled_from(["drowsy", "neat"]),
           seed=st.integers(min_value=0, max_value=2))
    def test_parity_over_shard_counts(self, shards, controller, seed):
        dc = build_fleet(n_hosts=6, n_vms=12, llmi_fraction=0.5,
                         hours=8, seed=11)
        s = Simulation(dc, controller, "sharded", seed=seed,
                       backend_config=ShardedConfig(shards=shards)).run(6)
        assert dataclasses.replace(s, backend="event") == self._plain(
            controller, seed)


# ----------------------------------------------------------------------
# serializable specs: ScenarioSpec <-> JSON
# ----------------------------------------------------------------------

class TestScenarioSpecJSON:
    def test_all_builtins_round_trip(self):
        specs = list_scenarios()
        assert len(specs) >= 11
        for spec in specs:
            text = spec.to_json()
            back = ScenarioSpec.from_json(text)
            assert back == spec, spec.name

    def test_json_is_plain_data(self):
        payload = json.loads(get_scenario("dev-churn").to_json())
        assert payload["name"] == "dev-churn"
        assert isinstance(payload["vms"], list)

    def test_fault_plan_survives(self):
        spec = get_scenario("failover-drill")
        back = ScenarioSpec.from_json(spec.to_json())
        assert back.faults == spec.faults
        assert back.faults.waking.kill_primary_at_h == 30.0

    def test_round_tripped_spec_compiles_identically(self):
        spec = ScenarioSpec.from_json(get_scenario("steady-llmu").to_json())
        a = Simulation.from_scenario(spec, seed=0, backend="hourly",
                                     hours=6).run()
        b = Simulation.from_scenario("steady-llmu", seed=0,
                                     backend="hourly", hours=6).run()
        assert a == b


# ----------------------------------------------------------------------
# serializable results: RunResult.save()/load()
# ----------------------------------------------------------------------

class TestResultPersistence:
    @pytest.fixture(scope="class")
    def result(self):
        return plain_event("drowsy", 5, 8)

    @pytest.mark.parametrize("suffix", ["csv", "db"])
    def test_round_trip(self, result, suffix, tmp_path):
        path = tmp_path / f"run.{suffix}"
        result.save(path)
        assert RunResult.load(path) == result

    def test_parquet_round_trip(self, result, tmp_path):
        pytest.importorskip("pyarrow")
        path = tmp_path / "run.parquet"
        result.save(path)
        assert RunResult.load(path) == result

    def test_fault_summary_round_trips(self, tmp_path):
        res = plain_event("drowsy", 5, 8, faults=CRASH_PLAN)
        assert res.fault_summary is not None
        path = tmp_path / "run.csv"
        res.save(path)
        back = RunResult.load(path)
        assert back.fault_summary == res.fault_summary
        assert back == res

    def test_sharded_result_round_trips(self, tmp_path):
        res = sharded("drowsy", 5, 8, shards=3)
        path = tmp_path / "run.db"
        res.save(path)
        assert RunResult.load(path) == res


# ----------------------------------------------------------------------
# registry describe + CLI list
# ----------------------------------------------------------------------

class TestDescribeAndList:
    def test_registry_describe(self):
        desc = backends.describe()
        assert set(desc) >= {"hourly", "event", "sharded"}
        assert all(isinstance(v, str) and v for v in desc.values())
        assert set(controllers.describe()) >= {"drowsy", "neat"}

    @pytest.mark.parametrize("kind,expect", [
        ("controllers", "drowsy"),
        ("backends", "sharded"),
        ("scenarios", "dev-churn"),
    ])
    def test_cli_list(self, kind, expect, capsys):
        from repro.cli import main

        assert main(["list", kind]) == 0
        assert expect in capsys.readouterr().out
