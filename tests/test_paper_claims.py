"""One test per headline sentence of the paper.

A reading guide in test form: each test quotes a claim from the paper
and checks the reproduced system exhibits it (at reduced scale where the
full experiment would be slow — the benchmarks run the full versions).
"""

import numpy as np
import pytest

from repro.core.params import DEFAULT_PARAMS, SIGMA


class TestAbstractClaims:
    def test_colocation_enables_suspension_of_nonempty_servers(self):
        """'a DC server may be suspended despite not being empty (i.e.
        it is hosting VMs)' — §I."""
        from repro.cluster import DataCenter, Host, TESTBED_VM, VM
        from repro.sim.hourly import HourlyConfig, HourlySimulator
        from repro.traces.synthetic import always_idle_trace
        from tests.test_sim_hourly import PassiveController

        host = Host("h")
        dc = DataCenter([host])
        dc.place(VM("a", always_idle_trace(48), TESTBED_VM), host)
        dc.place(VM("b", always_idle_trace(48), TESTBED_VM), host)
        result = HourlySimulator(
            dc, PassiveController(),
            config=HourlyConfig(power_off_empty=False)).run(24)
        assert len(host.vms) == 2, "server is not empty"
        assert result.suspended_fraction_by_host["h"] > 0.9

    def test_suspended_power_is_an_order_of_magnitude_lower(self):
        """'The energy consumed by a host when suspended is about 5W,
        around 10% of the consumption in idle S0 state' — §VI-A.2."""
        from repro.cluster.power import PowerModel, PowerState

        m = PowerModel.from_params(DEFAULT_PARAMS)
        s3 = m.power(PowerState.SUSPENDED, 0.0)
        s0 = m.power(PowerState.ON, 0.0)
        assert s3 / s0 == pytest.approx(0.1)


class TestSectionIIIClaims:
    def test_im_is_four_scales_and_four_weights(self):
        """'a VM's idleness model is composed of many synthesized
        idleness scores (24 SId, 24×7 SIw, 24×31 SIm, 24×365 SIy) and 4
        weights' — §III-A."""
        from repro.core.model import IdlenessModel

        m = IdlenessModel()
        assert m.sid.size == 24
        assert m.siw.size == 24 * 7
        assert m.sim.size == 24 * 31
        assert m.siy.size == 24 * 365
        assert m.weights.size == 4

    def test_ip_is_weighted_sum(self):
        """Eq. (1): IP = w^T · SI."""
        from repro.core.calendar import slot_of_hour
        from repro.core.model import IdlenessModel

        m = IdlenessModel()
        for h in range(100):
            m.observe(h, 0.0 if h % 3 else 0.4)
        s = slot_of_hour(100)
        assert m.raw_ip(s) == pytest.approx(float(m.weights @ m.si_vector(s)))

    def test_sigma_calibration_sentence(self):
        """'a VM needs constant activity (ah = 1) during an entire year
        to bring its SId from 0 to −1 (ignoring the coefficient u)' —
        §III-C: 8760 updates of size sigma sum to exactly 1."""
        assert 365 * 24 * SIGMA == pytest.approx(1.0)

    def test_range_threshold_is_a_week_of_activity(self):
        """'the threshold of a too wide IP range to 7σ ... roughly
        represents a difference of a week of constant maximum activity
        in a SId' — §III-D: 7 daily updates of sigma each."""
        assert DEFAULT_PARAMS.ip_range_threshold == pytest.approx(7 * SIGMA)

    def test_no_overhead_on_wrong_predictions(self):
        """'there is no overhead in the case of wrong predictions ...
        actual suspension or wake up of a server is always executed
        because of real factors' — §III-D-c: a VM wrongly predicted
        idle does NOT cause its (active) host to suspend."""
        from repro.cluster import Host, TESTBED_VM, VM
        from repro.suspend.module import SuspendDecision, SuspendingModule
        from repro.traces.synthetic import always_idle_trace

        host = Host("h")
        vm = VM("v", always_idle_trace(48), TESTBED_VM)
        host.add_vm(vm)
        # Train the model to (wrongly) predict idleness...
        for h in range(14 * 24):
            vm.model.observe(h, 0.0)
        # ...but the VM is actually computing right now.
        vm.current_activity = 0.6
        verdict = SuspendingModule(host).evaluate(now=14 * 24 * 3600.0)
        assert verdict.decision is SuspendDecision.ACTIVE


class TestSectionIVClaims:
    def test_grace_prevents_oscillation_by_design(self):
        """'when a drowsy server is resumed, there is some time during
        which it cannot be suspended again, whatever its activity
        level' — §IV."""
        from repro.cluster import Host, TESTBED_VM, VM
        from repro.suspend.module import SuspendDecision, SuspendingModule
        from repro.traces.synthetic import always_idle_trace

        host = Host("h")
        host.add_vm(VM("v", always_idle_trace(48), TESTBED_VM))
        host.begin_suspend(0.0)
        host.finish_suspend(3.0)
        host.begin_resume(10.0)
        host.finish_resume(10.8, grace_s=60.0)
        verdict = SuspendingModule(host).evaluate(now=30.0)
        assert verdict.decision is SuspendDecision.IN_GRACE

    def test_grace_bounds_match_paper(self):
        """'We empirically set the grace time between 5s and 2min' —
        §IV (exponential in the IP)."""
        from repro.suspend.grace import grace_time_s

        values = [grace_time_s(p) for p in np.linspace(0, 1, 50)]
        assert min(values) == pytest.approx(5.0)
        assert max(values) == pytest.approx(120.0)


class TestSectionVClaims:
    def test_no_valid_timer_means_indefinite_sleep(self):
        """'The host can remain suspended indefinitely until the waking
        module wakes it up because of an external request' — §V-B."""
        from repro.cluster import Host, TESTBED_VM, VM
        from repro.suspend.timers import compute_waking_date
        from repro.traces.synthetic import always_idle_trace

        host = Host("h")
        host.add_vm(VM("v", always_idle_trace(48), TESTBED_VM))  # no timers
        assert compute_waking_date(host, now=0.0) is None

    def test_wol_sent_ahead_of_waking_date(self):
        """'This request is sent ahead of time in order to take into
        account the waking latency' — §V-B."""
        from repro.cluster import EventSimulator, Host, TESTBED_VM, VM
        from repro.traces.synthetic import always_idle_trace
        from repro.waking import WakingModule

        sim = EventSimulator()
        sent = []
        module = WakingModule("wm", sim, lambda p, t: sent.append(t))
        host = Host("h")
        host.add_vm(VM("v", always_idle_trace(48), TESTBED_VM))
        module.register_suspension(host, waking_date_s=1000.0)
        sim.run()
        assert sent and sent[0] < 1000.0


class TestSectionVIIClaims:
    def test_linear_vs_quadratic_gap_at_scale(self):
        """'Drowsy-DC's complexity is O(n), compared to O(n²) for the
        other system' — §VII: at n=256 the pairwise matcher is at least
        5x slower than the linear grouping."""
        import time

        from repro.consolidation.baseline import (
            drowsy_linear_grouping,
            pairwise_matching_grouping,
        )
        from repro.experiments.scalability import _make_population

        vms, hosts = _make_population(256, DEFAULT_PARAMS, trained_hours=24)
        t0 = time.perf_counter()
        drowsy_linear_grouping(vms, hosts, 25)
        linear = time.perf_counter() - t0
        t0 = time.perf_counter()
        pairwise_matching_grouping(vms, hosts, 25)
        quadratic = time.perf_counter() - t0
        assert quadratic > 5 * linear
