"""Documentation health: the README quickstart works, the docs exist,
and every public package exposes a docstring and a coherent __all__."""

import importlib
import pathlib

import pytest

REPO = pathlib.Path(__file__).resolve().parents[1]

PACKAGES = [
    "repro",
    "repro.analysis",
    "repro.api",
    "repro.cluster",
    "repro.consolidation",
    "repro.core",
    "repro.experiments",
    "repro.faults",
    "repro.network",
    "repro.scenarios",
    "repro.sched",
    "repro.sim",
    "repro.suspend",
    "repro.traces",
    "repro.waking",
]


class TestDocsExist:
    @pytest.mark.parametrize("name", ["README.md", "DESIGN.md", "EXPERIMENTS.md"])
    def test_doc_present_and_substantial(self, name):
        path = REPO / name
        assert path.exists(), f"{name} missing"
        assert len(path.read_text()) > 1000, f"{name} looks like a stub"

    def test_design_has_substitution_table(self):
        text = (REPO / "DESIGN.md").read_text()
        assert "substitution" in text.lower() or "Substitut" in text
        assert "Experiment index" in text or "experiment index" in text.lower()

    def test_experiments_covers_every_artifact(self):
        text = (REPO / "EXPERIMENTS.md").read_text()
        for artifact in ("Fig. 1", "Fig. 2", "Table I", "Fig. 4",
                         "SLA", "Oasis", "scalability"):
            assert artifact in text, f"EXPERIMENTS.md missing {artifact}"


class TestPackageHygiene:
    @pytest.mark.parametrize("package", PACKAGES)
    def test_docstring_and_all(self, package):
        mod = importlib.import_module(package)
        assert mod.__doc__, f"{package} has no docstring"
        assert hasattr(mod, "__all__") or package == "repro.experiments"

    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_entries_resolve(self, package):
        mod = importlib.import_module(package)
        for name in getattr(mod, "__all__", []):
            if package == "repro.experiments":
                # Lazy package: entries are importable submodules.
                importlib.import_module(f"{package}.{name}")
            else:
                assert hasattr(mod, name), f"{package}.{name} in __all__ missing"


class TestReadmeQuickstart:
    def test_quickstart_snippet_runs(self):
        """The exact code shown in the README quickstart."""
        from repro import IdlenessModel, slot_of_hour
        from repro.traces import daily_backup_trace

        trace = daily_backup_trace(days=60)
        model = IdlenessModel()
        for hour, activity in enumerate(trace.activities):
            model.observe(hour, float(activity))

        slot = slot_of_hour(60 * 24 + 2)
        p_active_hour = model.idleness_probability(slot)
        assert p_active_hour < 0.5  # predicted ACTIVE at backup time
        assert model.predict_idle(slot_of_hour(60 * 24 + 14))

    def test_examples_exist_and_have_mains(self):
        examples = sorted((REPO / "examples").glob("*.py"))
        assert len(examples) >= 3, "the deliverable requires >= 3 examples"
        for ex in examples:
            text = ex.read_text()
            assert '__main__' in text, f"{ex.name} is not runnable"
            assert text.startswith('"""'), f"{ex.name} lacks a doc header"
