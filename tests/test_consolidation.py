"""Tests for detectors, selectors, placement and the controllers."""

import numpy as np
import pytest

from repro.cluster import DataCenter, Host, HostCapacity, ResourceSpec, VM
from repro.consolidation import (
    DrowsyController,
    IPAwarePlacement,
    IPDistanceSelector,
    IqrDetector,
    LocalRegressionDetector,
    MadDetector,
    MinimumMigrationTimeSelector,
    NeatController,
    OasisController,
    PowerAwareBestFitDecreasing,
    RandomSelector,
    MaximumCorrelationSelector,
    ThresholdDetector,
    select_until_not_overloaded,
    underloaded_candidates,
)
from repro.core.params import DEFAULT_PARAMS
from repro.traces.synthetic import always_idle_trace

CAP = HostCapacity(cpus=8, memory_mb=16384, cpu_overcommit=1.0)
FLAVOR = ResourceSpec(cpus=2, memory_mb=4096)


def make_vm(name, activity=0.0, trace=None):
    vm = VM(name, trace or always_idle_trace(24 * 30), FLAVOR)
    vm.current_activity = activity
    return vm


class TestDetectors:
    def test_threshold(self):
        d = ThresholdDetector(0.8)
        assert d.is_overloaded([0.5, 0.9])
        assert not d.is_overloaded([0.9, 0.5])
        assert not d.is_overloaded([])

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            ThresholdDetector(0.0)

    def test_mad_adapts_to_variability(self):
        stable = [0.5] * 20 + [0.85]
        # MAD of constant history = 0 -> threshold 1.0 -> not overloaded.
        assert not MadDetector().is_overloaded(stable)
        volatile = list(np.linspace(0.1, 0.9, 20)) + [0.85]
        assert MadDetector().is_overloaded(volatile)

    def test_mad_fallback_with_short_history(self):
        assert MadDetector().is_overloaded([0.9])

    def test_iqr_behaviour(self):
        stable = [0.5] * 20 + [0.99]
        assert not IqrDetector().is_overloaded(stable)

    def test_lr_predicts_trend(self):
        rising = list(np.linspace(0.3, 0.9, 10))
        assert LocalRegressionDetector().is_overloaded(rising)
        flat = [0.3] * 10
        assert not LocalRegressionDetector().is_overloaded(flat)

    def test_underloaded_ordering(self):
        utils = {"a": 0.5, "b": 0.1, "c": 0.3}
        assert underloaded_candidates(utils) == ["b", "c", "a"]
        assert underloaded_candidates(utils, exclude=frozenset({"b"})) == ["c", "a"]


class TestSelectors:
    def make_host(self, activities):
        host = Host("h", CAP)
        for i, act in enumerate(activities):
            host.add_vm(make_vm(f"v{i}", act))
        return host

    def test_mmt_prefers_cheap_migrations(self):
        host = self.make_host([0.9, 0.0])
        order = MinimumMigrationTimeSelector().order(host, 0)
        # The idle VM dirties no pages: cheapest to move.
        assert order[0].name == "v1"

    def test_random_selector_deterministic_with_seed(self):
        host = self.make_host([0.1, 0.2, 0.3])
        a = [vm.name for vm in RandomSelector(seed=1).order(host, 0)]
        b = [vm.name for vm in RandomSelector(seed=1).order(host, 0)]
        assert a == b

    def test_ip_distance_selector_picks_outlier_first(self):
        host = Host("h", CAP)
        odd, even1, even2 = (make_vm(n) for n in ("odd", "even1", "even2"))
        for h in range(14 * 24):
            odd.model.observe(h, 0.5)
            even1.model.observe(h, 0.0)
            even2.model.observe(h, 0.0)
        for vm in (even1, even2, odd):
            host.add_vm(vm)
        order = IPDistanceSelector().order(host, 14 * 24)
        assert order[0].name == "odd"

    def test_max_correlation_falls_back_when_short(self):
        host = self.make_host([0.5])
        order = MaximumCorrelationSelector().order(host, 0)
        assert len(order) == 1

    def test_select_until_not_overloaded(self):
        host = self.make_host([1.0, 1.0, 1.0, 1.0])  # util 8/8 = 1.0
        order = host.vms
        selected = select_until_not_overloaded(host, order, threshold=0.8)
        # Removing one VM: 6/8 = 0.75 <= 0.8.
        assert len(selected) == 1


class TestPlacement:
    def make_hosts(self, n):
        return [Host(f"h{i}", CAP) for i in range(n)]

    def test_pabfd_packs_by_power(self):
        hosts = self.make_hosts(2)
        hosts[0].add_vm(make_vm("existing", 0.5))
        vm = make_vm("new", 0.2)
        placement = PowerAwareBestFitDecreasing().place(
            [vm], hosts, 0, {})
        # Marginal power is identical (linear model) so the first host in
        # order wins; what matters is that a valid host is chosen.
        assert placement["new"].name in ("h0", "h1")

    def test_pabfd_respects_capacity(self):
        hosts = self.make_hosts(1)
        vms = [make_vm(f"v{i}") for i in range(5)]  # only 4 fit
        placement = PowerAwareBestFitDecreasing().place(vms, hosts, 0, {})
        assert len(placement) == 4

    def test_pabfd_excludes_current_host(self):
        hosts = self.make_hosts(2)
        vm = make_vm("v")
        hosts[0].add_vm(vm)
        placement = PowerAwareBestFitDecreasing().place(
            [vm], hosts, 0, {"v": hosts[0]})
        assert placement["v"].name == "h1"

    def test_ip_aware_places_with_closest_ip(self):
        hosts = self.make_hosts(2)
        idle_mate, busy_mate, cand = (make_vm(n) for n in ("im", "bm", "c"))
        for h in range(14 * 24):
            idle_mate.model.observe(h, 0.0)
            busy_mate.model.observe(h, 0.6)
            cand.model.observe(h, 0.0)
        hosts[0].add_vm(busy_mate)
        hosts[1].add_vm(idle_mate)
        placement = IPAwarePlacement().place([cand], hosts, 14 * 24, {})
        assert placement["c"].name == "h1"


def build_dc(activities_by_host, params=DEFAULT_PARAMS):
    hosts = [Host(f"h{i}", CAP, params) for i in range(len(activities_by_host))]
    dc = DataCenter(hosts, params)
    k = 0
    for host, acts in zip(hosts, activities_by_host):
        for a in acts:
            vm = make_vm(f"vm{k}", a)
            dc.place(vm, host)
            k += 1
    return dc


class TestNeatController:
    def test_overloaded_host_sheds_vms(self):
        dc = build_dc([[1.0, 1.0, 1.0, 1.0], []])
        ctrl = NeatController(dc)
        for _ in range(2):
            ctrl.observe_hour(0)
        moved = ctrl.step(0, now=0.0)
        assert moved >= 1
        assert dc.host("h0").cpu_utilization <= 1.0
        dc.check_invariants()

    def test_underload_evacuation_powers_path(self):
        # h1 has one small VM and the lowest utilization; it fits on h0
        # -> h1 is evacuated, and the receiver h0 is not re-evacuated.
        dc = build_dc([[0.2, 0.2], [0.1]])
        ctrl = NeatController(dc)
        ctrl.observe_hour(0)
        ctrl.step(0, now=0.0)
        assert len(dc.host("h1").vms) == 0
        assert len(dc.host("h0").vms) == 3

    def test_no_action_when_balanced(self):
        dc = build_dc([[0.3, 0.3], [0.3, 0.3]])
        ctrl = NeatController(dc)
        ctrl.observe_hour(0)
        # Full hosts cannot be evacuated; nothing overloaded.
        before = len(dc.migrations)
        ctrl.step(0, now=0.0)
        # Underload may still try; invariants must hold regardless.
        dc.check_invariants()
        assert len(dc.migrations) >= before

    def test_history_recorded(self):
        dc = build_dc([[0.5]])
        ctrl = NeatController(dc)
        ctrl.observe_hour(0)
        ctrl.observe_hour(1)
        assert len(ctrl.history["h0"]) == 2


class TestDrowsyController:
    def train(self, dc, patterns, hours=7 * 24):
        """patterns: map vm name -> callable(hour) -> activity"""
        for t in range(hours):
            for vm in dc.vms:
                vm.model.observe(t, patterns[vm.name](t))

    def test_opportunistic_step_splits_wide_host(self):
        params = DEFAULT_PARAMS
        dc = build_dc([[0.0, 0.0], [0.0, 0.0]], params)
        # vm0 idle-pattern, vm1 active-pattern on same host; partners on h1.
        patterns = {
            "vm0": lambda t: 0.0,
            "vm1": lambda t: 0.5,
            "vm2": lambda t: 0.0,
            "vm3": lambda t: 0.5,
        }
        self.train(dc, patterns, hours=28 * 24)
        # Rearrange so h0 = {idle, active}, h1 = {idle, active}: wide ranges.
        ctrl = DrowsyController(dc, params=params)
        hour = 28 * 24
        assert dc.host("h0").ip_range(hour) > params.ip_range_threshold
        moved = ctrl.opportunistic_step(hour, lambda vm, dest: dc.migrate(vm, dest, 0.0))
        assert moved >= 1
        # After the step, like sits with like.
        h0_names = {vm.name for vm in dc.host("h0").vms}
        assert h0_names in ({"vm0", "vm2"}, {"vm1", "vm3"})

    def test_opportunistic_step_disabled_by_params(self):
        params = DEFAULT_PARAMS.replace(opportunistic_step=False)
        # Full hosts: underload evacuation cannot move anything either.
        dc = build_dc([[0.0] * 4, [0.0] * 4], params)
        ctrl = DrowsyController(dc, params=params)
        ctrl.observe_hour(0)
        before = len(dc.migrations)
        ctrl.step(0, now=0.0)
        # No overload, no underload possible (capacity), no opportunistic.
        assert len(dc.migrations) == before

    def test_relocate_all_groups_matching_patterns(self):
        params = DEFAULT_PARAMS
        dc = build_dc([[0.0, 0.0], [0.0, 0.0]], params)
        patterns = {
            "vm0": lambda t: 0.3 if t % 24 < 12 else 0.0,
            "vm1": lambda t: 0.3 if t % 24 >= 12 else 0.0,
            "vm2": lambda t: 0.3 if t % 24 < 12 else 0.0,
            "vm3": lambda t: 0.3 if t % 24 >= 12 else 0.0,
        }
        self.train(dc, patterns)
        ctrl = DrowsyController(dc, params=params)
        ctrl.relocate_all(7 * 24, now=7 * 24 * 3600.0)
        groups = [{vm.name for vm in dc.host(h).vms} for h in ("h0", "h1")]
        assert {"vm0", "vm2"} in groups
        assert {"vm1", "vm3"} in groups

    def test_relocate_all_stable_on_repeat(self):
        """Second relocation right after the first moves nothing."""
        params = DEFAULT_PARAMS
        dc = build_dc([[0.0, 0.0], [0.0, 0.0]], params)
        patterns = {
            "vm0": lambda t: 0.3 if t % 24 < 12 else 0.0,
            "vm1": lambda t: 0.3 if t % 24 >= 12 else 0.0,
            "vm2": lambda t: 0.3 if t % 24 < 12 else 0.0,
            "vm3": lambda t: 0.3 if t % 24 >= 12 else 0.0,
        }
        self.train(dc, patterns)
        ctrl = DrowsyController(dc, params=params)
        ctrl.relocate_all(7 * 24, now=0.0)
        assert ctrl.relocate_all(7 * 24, now=1.0) == 0

    def test_relocate_empty_dc(self):
        dc = DataCenter([Host("h0", CAP)])
        ctrl = DrowsyController(dc)
        assert ctrl.relocate_all(0, now=0.0) == 0


class TestOasis:
    def test_parks_idle_and_restores_active(self):
        dc = build_dc([[0.0], [0.0]])
        ctrl = OasisController(dc, n_consolidation_hosts=1)
        worker_vm = dc.host("h1").vms[0]
        ctrl.step(0, now=0.0)
        assert worker_vm.name in ctrl.parked
        assert ctrl.host_can_sleep(dc.host("h1"))
        worker_vm.current_activity = 0.5
        ctrl.step(1, now=3600.0)
        assert worker_vm.name not in ctrl.parked
        assert ctrl.restore_count == 1
        assert not ctrl.host_can_sleep(dc.host("h1"))

    def test_consolidation_host_never_sleeps(self):
        dc = build_dc([[0.0], [0.0]])
        ctrl = OasisController(dc, n_consolidation_hosts=1)
        ctrl.step(0, now=0.0)
        assert not ctrl.host_can_sleep(dc.host("h0"))

    def test_transfer_energy_accumulates(self):
        dc = build_dc([[0.0], [0.0]])
        ctrl = OasisController(dc)
        ctrl.step(0, now=0.0)
        assert ctrl.transfer_energy_j > 0

    def test_validation(self):
        dc = build_dc([[0.0]])
        with pytest.raises(ValueError):
            OasisController(dc, n_consolidation_hosts=1)  # no workers left
        with pytest.raises(ValueError):
            OasisController(dc, n_consolidation_hosts=0)
