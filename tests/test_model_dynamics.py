"""Dynamics of the idleness model: responsiveness, damping, stability.

Paper §III-C claims the u-coefficient exists so that "(1) SI* increase
or decrease quickly when undetermined to learn the VM's behavior
quickly; and (2) SI* do not reach very extreme values so that the IM can
respond to unexpected VM behavior quickly."  These tests pin both
properties, plus regime-change responsiveness end to end.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.calendar import slot_of_hour
from repro.core.metrics import ConfusionCounts
from repro.core.model import IdlenessModel
from repro.core.params import SIGMA, u_coefficient


class TestUpdateDamping:
    def test_updates_shrink_as_scores_grow(self):
        """Claim (2): per-update magnitude decreases with |SI|."""
        m = IdlenessModel()
        deltas = []
        prev = 0.0
        for day in range(200):
            m.observe(day * 24, 0.0)  # hour 0, idle, every day
            deltas.append(m.sid[0] - prev)
            prev = m.sid[0]
        assert all(d > 0 for d in deltas)
        # Damping: later updates strictly smaller than early ones.
        assert deltas[-1] < deltas[0]

    def test_scores_cannot_reach_extremes_quickly(self):
        """Claim (2): even a year of pure idleness keeps |SI| moderate."""
        m = IdlenessModel()
        for day in range(365):
            m.observe(day * 24, 0.0)
        assert m.sid[0] < 0.05  # sigma-scaled: far from the +1 bound

    def test_undetermined_learns_fastest(self):
        """Claim (1): the first updates are the largest."""
        assert u_coefficient(0.0) > u_coefficient(0.3) > u_coefficient(0.9)


class TestRegimeChangeResponsiveness:
    def test_flip_detected_faster_than_it_was_learned(self):
        """A VM idle at hour 3 for a month, then active: the hour-3
        prediction flips in *less* time than the original pattern took
        to learn — the u-damping plus weight correction at work.
        (Measured: ~17 days of new regime after 30 days of old.)"""
        phase1_days = 30
        m = IdlenessModel()
        for h in range(phase1_days * 24):
            m.observe(h, 0.0 if h % 24 == 3 else 0.4)
        assert m.predict_idle(slot_of_hour(phase1_days * 24 + 3))
        flip_day = None
        for day in range(phase1_days, phase1_days + 60):
            for hod in range(24):
                h = day * 24 + hod
                m.observe(h, 0.4 if h % 24 == 3 else 0.0)
            if not m.predict_idle(slot_of_hour((day + 1) * 24 + 3)):
                flip_day = day - phase1_days
                break
        assert flip_day is not None, "prediction never flipped"
        assert flip_day < phase1_days, \
            f"unlearning ({flip_day} d) should beat learning ({phase1_days} d)"

    def test_prediction_quality_recovers_after_flip(self):
        m = IdlenessModel()
        for h in range(60 * 24):
            m.observe(h, 0.3 if 9 <= h % 24 <= 17 else 0.0)
        # Flip: night-shift pattern.
        counts_late = ConfusionCounts()
        for h in range(60 * 24, 150 * 24):
            pred, actual = m.predict_and_observe(
                h, 0.3 if h % 24 <= 6 else 0.0)
            if h >= 120 * 24:  # after 60 days of the new regime
                counts_late.update(pred, actual)
        assert counts_late.f_measure > 0.85

    def test_faster_learning_with_higher_activity(self):
        """Eq. (2)'s intent: idleness after *heavy* activity is learned
        faster than after light activity (a-bar scales the update)."""
        heavy, light = IdlenessModel(), IdlenessModel()
        for h in range(24):
            heavy.observe(h, 0.9 if h != 3 else 0.0)
            light.observe(h, 0.1 if h != 3 else 0.0)
        assert heavy.sid[3] > light.sid[3]


class TestScoreSequences:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=1, max_value=60))
    def test_monotone_under_constant_idleness(self, days):
        m = IdlenessModel()
        values = []
        for day in range(days):
            m.observe(day * 24, 0.0)
            values.append(m.sid[0])
        assert all(a < b for a, b in zip(values, values[1:]))

    @settings(max_examples=10, deadline=None)
    @given(st.floats(min_value=0.05, max_value=1.0))
    def test_symmetric_updates_cancel(self, level):
        """One idle + one active observation with identical a leave SId
        almost unchanged (u varies slightly between the two)."""
        m = IdlenessModel()
        m.observe(0, level)          # active: a_h = level
        after_active = m.sid[0]
        m.observe(24, 0.0)           # idle: a-bar = level
        assert abs(m.sid[0] - after_active) == pytest.approx(
            SIGMA * level * u_coefficient(abs(after_active)), rel=1e-9)

    def test_weights_never_leave_simplex_under_stress(self):
        rng = np.random.default_rng(8)
        m = IdlenessModel()
        for h in range(1000):
            m.observe(h, float(rng.choice([0.0, 0.1, 0.9])))
            assert m.weights.min() >= -1e-12
            assert m.weights.sum() == pytest.approx(1.0, abs=1e-9)
