"""Integration tests: every experiment driver runs and reproduces the
paper's qualitative claims at reduced scale."""

import numpy as np
import pytest

from repro.core.params import DEFAULT_PARAMS
from repro.experiments import common as exp_common


@pytest.fixture(scope="module")
def testbed():
    return exp_common.build_testbed()


class TestCommonBuilders:
    def test_testbed_shape(self, testbed):
        assert len(testbed.dc.hosts) == 4
        assert len(testbed.dc.vms) == 8
        testbed.dc.check_invariants()

    def test_llmu_vms_start_apart(self, testbed):
        assert testbed.dc.host_of(testbed.vms["V1"]).name != \
            testbed.dc.host_of(testbed.vms["V2"]).name
        assert testbed.dc.host_of(testbed.vms["V2"]).name == "P2"

    def test_v3_v4_same_workload(self, testbed):
        np.testing.assert_array_equal(
            testbed.vms["V3"].trace.activities,
            testbed.vms["V4"].trace.activities)

    def test_fleet_builder_fractions(self):
        dc = exp_common.build_fleet(4, 16, 0.5, hours=48)
        from repro.traces.base import VMKind

        kinds = [vm.kind for vm in dc.vms]
        assert kinds.count(VMKind.LLMI) == 8
        assert kinds.count(VMKind.LLMU) == 8

    def test_fleet_fraction_validation(self):
        with pytest.raises(ValueError):
            exp_common.build_fleet(2, 4, 1.5, hours=24)


class TestFig1:
    def test_series_and_identity(self):
        from repro.experiments import fig1_traces

        data = fig1_traces.run(days=6)
        assert set(data.series) == {"VM3", "VM4", "VM6"}
        np.testing.assert_array_equal(data.series["VM3"], data.series["VM4"])
        assert "VM3" in fig1_traces.render(data)

    def test_activity_levels_match_fig1_band(self):
        """Fig. 1 shows activity peaks in the ~10-35 % band."""
        from repro.experiments import fig1_traces

        data = fig1_traces.run(days=6)
        for vm in ("VM3", "VM6"):
            active = data.series[vm][data.series[vm] > 0]
            assert 0.05 < active.mean() < 0.4


class TestFig2:
    @pytest.fixture(scope="class")
    def data(self):
        from repro.experiments import fig2_colocation

        return fig2_colocation.run(days=4)

    def test_llmu_pair_colocated(self, data):
        """Paper: V1/V2 co-ran for the majority of the experiment."""
        assert data.summary.llmu_pair_fraction > 0.5

    def test_same_workload_pair_colocated(self, data):
        assert data.summary.same_workload_pair_fraction > 0.5

    def test_migrations_low(self, data):
        """Paper: migration counts are low (placement stabilizes)."""
        assert data.summary.max_migrations_per_vm <= 4
        assert data.summary.total_migrations <= 3 * 8

    def test_render(self, data):
        text = data.render()
        assert "V1" in text and "#mig" in text


class TestTable1AndEnergy:
    @pytest.fixture(scope="class")
    def energy(self):
        from repro.experiments import energy_totals

        return energy_totals.run(days=4)

    def test_energy_ordering(self, energy):
        """Drowsy <= Neat+S3 <= Neat-no-suspend (the paper's ordering)."""
        assert energy.drowsy.energy_kwh < energy.neat_s3.energy_kwh
        assert energy.neat_s3.energy_kwh < energy.neat_no_suspend.energy_kwh

    def test_savings_band(self, energy):
        """Roughly the paper's factors: ~55 % and ~27 % (wide bands)."""
        assert 30 <= energy.saving_vs_no_suspend_pct <= 70
        assert 5 <= energy.saving_vs_neat_s3_pct <= 45

    def test_table1_improvement(self):
        from repro.experiments import table1_suspension

        data = table1_suspension.run(days=4)
        drowsy = data.drowsy.global_suspended_fraction
        neat = data.neat.global_suspended_fraction
        assert drowsy > neat  # the headline Table I claim
        assert "Table I" in data.render()


class TestFig4Small:
    def test_one_year_checkpoints(self):
        from repro.experiments import fig4_im_quality

        data = fig4_im_quality.run(years=1)
        # Predictable traces: F > 0.9 after four weeks (paper: >0.97
        # after "a few weeks"; one-year run keeps the band generous).
        for prefix in ("a", "c", "d", "e", "f"):
            assert data.f_measure_at(prefix, 4 * 7 * 24) > 0.85, prefix
        assert data.by_name("h").final_specificity > 0.99
        assert "Fig. 4" in data.render()


class TestSuspendingEval:
    def test_all_axes(self):
        from repro.experiments import suspending_eval

        data = suspending_eval.run()
        assert data.detection.precision > 0.95
        assert data.detection.recall > 0.95
        assert data.cycles_with_grace < data.cycles_without_grace
        assert data.waking_date_ok
        assert data.blacklist_filtered
        assert data.eval_cost_us < 10_000
        assert "suspending module" in data.render()


class TestBackupAnticipation:
    def test_ahead_of_time_wake_no_penalty(self):
        from repro.experiments import backup_anticipation

        data = backup_anticipation.run(days=2)
        assert data.margins_s, "no backup expiries observed"
        assert data.all_anticipated

    def test_disabled_anticipation_pays_resume(self):
        from repro.experiments import backup_anticipation

        params = DEFAULT_PARAMS.replace(ahead_of_time_wake=False)
        data = backup_anticipation.run(days=2, params=params)
        assert not data.all_anticipated


class TestFleetSweepSmall:
    def test_improvement_grows_with_llmi_fraction(self):
        from repro.experiments import fleet_sweep

        data = fleet_sweep.run(llmi_fractions=(0.0, 1.0), n_hosts=4,
                               n_vms=16, days=3)
        first, last = data.points[0], data.points[-1]
        assert last.drowsy_vs_neat_no_s3_pct > first.drowsy_vs_neat_no_s3_pct
        assert last.drowsy_vs_neat_no_s3_pct > 40.0
        # Drowsy never loses to Oasis.
        assert last.drowsy_kwh <= last.oasis_kwh
        assert "fleet sweep" in data.render()


class TestScalability:
    def test_growth_exponents(self):
        from repro.experiments import scalability

        data = scalability.run(sizes=(32, 64, 128, 256), repeats=2)
        # Pairwise matching must grow clearly faster than Drowsy grouping.
        assert data.pairwise_exponent > data.drowsy_exponent + 0.4
        assert "scalability" in data.render()


class TestSLAExperiment:
    def test_sla_met_and_wake_tail(self):
        from repro.experiments import sla_latency

        data = sla_latency.run(days=2)
        assert data.optimized.sla_met
        assert data.optimized.wake_fraction < 0.05
        # The wake tail is bounded by the configured resume latency.
        assert data.optimized.max_wake_latency_s < 2.0
        assert "SLA" in data.render()
