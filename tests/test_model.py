"""Tests for the per-VM idleness model (paper section III)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.calendar import slot_of_hour
from repro.core.model import IdlenessModel
from repro.core.params import DEFAULT_PARAMS, SIGMA, u_coefficient


@pytest.fixture
def model():
    return IdlenessModel()


class TestInitialState:
    def test_scores_start_undetermined(self, model):
        assert np.all(model.sid == 0)
        assert np.all(model.siw == 0)
        assert np.all(model.sim == 0)
        assert np.all(model.siy == 0)

    def test_weights_start_uniform(self, model):
        np.testing.assert_allclose(model.weights, 0.25)

    def test_probability_starts_at_half(self, model):
        assert model.idleness_probability(slot_of_hour(0)) == pytest.approx(0.5)

    def test_initial_prediction_is_active(self, model):
        """IP == 50% is not strictly above the threshold."""
        assert not model.predict_idle(slot_of_hour(0))

    def test_table_shapes_match_paper(self, model):
        """24 SId, 24x7 SIw, 24x31 SIm, 24x365 SIy (section III-A)."""
        assert model.sid.shape == (24,)
        assert model.siw.shape == (7, 24)
        assert model.sim.shape == (31, 24)
        assert model.siy.shape == (365, 24)


class TestUCoefficient:
    def test_value_at_zero(self):
        # u(0) = 1/(1+e^(0.7*(0-0.5))) = 1/(1+e^-0.35)
        assert u_coefficient(0.0) == pytest.approx(1 / (1 + math.exp(-0.35)))

    def test_decreasing_in_si(self):
        values = [u_coefficient(x) for x in (0.0, 0.25, 0.5, 0.75, 1.0)]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_beta_is_halfway_point(self):
        assert u_coefficient(0.5) == pytest.approx(0.5)


class TestObserve:
    def test_idle_hour_raises_scores(self, model):
        model.observe(0, 0.0)
        s = slot_of_hour(0)
        assert model.sid[0] > 0
        assert model.siw[s.day_of_week, 0] > 0
        assert model.sim[s.day_of_month, 0] > 0
        assert model.siy[s.day_of_year, 0] > 0

    def test_active_hour_lowers_scores(self, model):
        model.observe(0, 0.5)
        assert model.sid[0] < 0

    def test_update_magnitude_eq3(self, model):
        """First update: v = sigma * a * u(0)."""
        model.observe(0, 1.0)
        expected = SIGMA * 1.0 * u_coefficient(0.0)
        assert model.sid[0] == pytest.approx(-expected)

    def test_idle_uses_mean_active_level(self):
        m = IdlenessModel()
        m.observe(0, 0.4)  # hour 0 active at 0.4
        before = m.sid[1]
        m.observe(1, 0.0)  # idle hour: update uses a-bar = 0.4
        delta = m.sid[1] - before
        assert delta == pytest.approx(SIGMA * 0.4 * u_coefficient(0.0))

    def test_cold_start_idle_uses_default_activity(self):
        m = IdlenessModel(DEFAULT_PARAMS.replace(default_activity=1.0))
        m.observe(0, 0.0)
        assert m.sid[0] == pytest.approx(SIGMA * 1.0 * u_coefficient(0.0))

    def test_activity_out_of_range_rejected(self, model):
        with pytest.raises(ValueError):
            model.observe(0, 1.5)
        with pytest.raises(ValueError):
            model.observe(0, -0.1)

    def test_only_one_cell_per_table_touched(self, model):
        model.observe(50, 0.0)  # hour 2 of day 2
        assert np.count_nonzero(model.sid) == 1
        assert np.count_nonzero(model.siw) == 1
        assert np.count_nonzero(model.sim) == 1
        assert np.count_nonzero(model.siy) == 1

    def test_mean_active_activity_tracks(self, model):
        model.observe(0, 0.2)
        model.observe(1, 0.6)
        model.observe(2, 0.0)
        assert model.mean_active_activity == pytest.approx(0.4)

    def test_hours_observed_counter(self, model):
        for h in range(5):
            model.observe(h, 0.0)
        assert model.hours_observed == 5


class TestBounds:
    @settings(max_examples=10, deadline=None)
    @given(st.lists(st.sampled_from([0.0, 0.3, 1.0]), min_size=50, max_size=300))
    def test_scores_stay_in_bounds(self, activities):
        m = IdlenessModel()
        for h, a in enumerate(activities):
            m.observe(h, a)
        for table in (m.sid, m.siw, m.sim, m.siy):
            assert np.all(table >= -1.0) and np.all(table <= 1.0)

    @settings(max_examples=10, deadline=None)
    @given(st.lists(st.sampled_from([0.0, 0.5]), min_size=20, max_size=100))
    def test_weights_stay_on_simplex(self, activities):
        m = IdlenessModel()
        for h, a in enumerate(activities):
            m.observe(h, a)
        assert np.all(m.weights >= -1e-12)
        assert m.weights.sum() == pytest.approx(1.0, abs=1e-9)

    def test_year_of_constant_activity_bounded(self):
        """Sigma calibration: a year of full activity cannot overshoot -1."""
        m = IdlenessModel()
        # Simulate a year of updates on a single sid cell via direct math:
        # |SId| after 365 updates of at most sigma each is <= 365*sigma < 0.05
        for day in range(365):
            m.observe(day * 24, 1.0)
        assert -1.0 <= m.sid[0] < 0.0
        assert abs(m.sid[0]) < 365 * SIGMA  # damped by u


class TestPrediction:
    def test_learns_daily_idle_hour(self):
        m = IdlenessModel()
        # Hour 3 always idle, others active, for 30 days.
        for h in range(30 * 24):
            m.observe(h, 0.0 if h % 24 == 3 else 0.5)
        idle_slot = slot_of_hour(30 * 24 + 3)
        busy_slot = slot_of_hour(30 * 24 + 4)
        assert m.predict_idle(idle_slot)
        assert not m.predict_idle(busy_slot)
        assert m.idleness_probability(idle_slot) > 0.5
        assert m.idleness_probability(busy_slot) < 0.5

    def test_raw_ip_is_weighted_sum(self, model):
        model.observe(0, 0.0)
        s = slot_of_hour(0)
        assert model.raw_ip(s) == pytest.approx(
            float(model.weights @ model.si_vector(s)))

    def test_predict_and_observe_protocol(self):
        """Prediction must be made before the observation is ingested."""
        m = IdlenessModel()
        predicted, actual = m.predict_and_observe(0, 0.0)
        assert predicted is False  # model knew nothing yet
        assert actual is True

    def test_weekly_pattern_needs_weekly_scale(self):
        """Weekend-idle pattern: weekly scale separates Sat from Mon."""
        m = IdlenessModel()
        for h in range(8 * 7 * 24):
            dw = (h // 24) % 7
            active = dw < 5 and 9 <= h % 24 <= 17
            m.observe(h, 0.3 if active else 0.0)
        # Monday 10 am: active; Saturday 10 am: idle.
        monday = slot_of_hour(8 * 7 * 24 + 10)
        saturday = slot_of_hour(8 * 7 * 24 + 5 * 24 + 10)
        assert monday.day_of_week == 0 and saturday.day_of_week == 5
        assert m.idleness_probability(saturday) > m.idleness_probability(monday)


class TestScaleAblation:
    def test_disabled_scales_stay_zero(self):
        params = DEFAULT_PARAMS.replace(use_yearly_scale=False,
                                        use_monthly_scale=False)
        m = IdlenessModel(params)
        for h in range(100):
            m.observe(h, 0.0)
        assert np.all(m.siy == 0)
        assert np.all(m.sim == 0)
        assert m.weights[2] == 0.0 and m.weights[3] == 0.0

    def test_day_only_still_learns(self):
        params = DEFAULT_PARAMS.replace(use_weekly_scale=False,
                                        use_monthly_scale=False,
                                        use_yearly_scale=False)
        m = IdlenessModel(params)
        for h in range(14 * 24):
            m.observe(h, 0.0 if h % 24 == 2 else 0.4)
        assert m.predict_idle(slot_of_hour(14 * 24 + 2))
