"""Tests for the suspension subsystem: processes, timers, grace, module."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.cluster import Host, ServiceTimer, TESTBED_VM, VM
from repro.core.params import DEFAULT_PARAMS, SIGMA
from repro.suspend import (
    DEFAULT_BLACKLIST,
    ProcState,
    Process,
    SuspendDecision,
    SuspendingModule,
    TimerEntry,
    TimerRegistry,
    build_host_registry,
    compute_waking_date,
    grace_from_raw_ip,
    grace_time_s,
    host_process_table,
    is_host_idle,
    vm_process_name,
)
from repro.traces.synthetic import always_idle_trace


def make_host(n_vms=1, timers=()):
    host = Host("h")
    vms = []
    for i in range(n_vms):
        vm = VM(f"vm{i}", always_idle_trace(48), TESTBED_VM, timers=timers)
        host.add_vm(vm)
        vms.append(vm)
    return host, vms


class TestProcessTable:
    def test_daemons_always_running(self):
        host, _ = make_host()
        table = host_process_table(host)
        daemons = [p for p in table if p.vm_name is None]
        assert len(daemons) == len(DEFAULT_BLACKLIST)
        assert all(p.state is ProcState.RUNNING for p in daemons)

    def test_active_vm_process_running(self):
        host, (vm,) = make_host()
        vm.current_activity = 0.4
        table = host_process_table(host)
        proc = next(p for p in table if p.vm_name == vm.name)
        assert proc.state is ProcState.RUNNING
        assert proc.name == vm_process_name(vm)

    def test_idle_vm_process_sleeping(self):
        host, (vm,) = make_host()
        table = host_process_table(host)
        proc = next(p for p in table if p.vm_name == vm.name)
        assert proc.state is ProcState.SLEEPING

    def test_blocked_io_injection(self):
        host, (vm,) = make_host()
        vm.blocked_io = True
        table = host_process_table(host)
        proc = next(p for p in table if p.vm_name == vm.name)
        assert proc.state is ProcState.BLOCKED_IO


class TestIsHostIdle:
    def test_blacklisted_running_is_ignored(self):
        table = [Process("watchdogd", ProcState.RUNNING)]
        assert is_host_idle(table)

    def test_non_blacklisted_running_keeps_awake(self):
        table = [Process("qemu-vm0", ProcState.RUNNING, "vm0")]
        assert not is_host_idle(table)

    def test_blocked_io_keeps_awake_even_blacklisted(self):
        """A blocked read is pending work regardless of the blacklist."""
        table = [Process("watchdogd", ProcState.BLOCKED_IO)]
        assert not is_host_idle(table)

    def test_all_sleeping_is_idle(self):
        table = [Process("qemu-a", ProcState.SLEEPING, "a"),
                 Process("qemu-b", ProcState.SLEEPING, "b")]
        assert is_host_idle(table)


class TestTimerRegistry:
    def test_earliest_valid_skips_blacklisted(self):
        reg = TimerRegistry()
        reg.register(TimerEntry(10.0, "watchdogd", "tick"))
        reg.register(TimerEntry(50.0, "service", "cron"))
        entry = reg.earliest_valid()
        assert entry.process_name == "service"
        assert entry.fire_time_s == 50.0

    def test_no_valid_timer_returns_none(self):
        reg = TimerRegistry()
        reg.register(TimerEntry(10.0, "watchdogd", "tick"))
        assert reg.earliest_valid() is None

    def test_rearm_replaces(self):
        reg = TimerRegistry()
        reg.register(TimerEntry(10.0, "svc", "t"))
        reg.register(TimerEntry(99.0, "svc", "t"))
        assert len(reg) == 1
        assert reg.earliest_valid().fire_time_s == 99.0

    def test_cancel(self):
        reg = TimerRegistry()
        reg.register(TimerEntry(10.0, "svc", "t"))
        assert reg.cancel("svc", "t")
        assert not reg.cancel("svc", "t")
        assert len(reg) == 0

    def test_entries_sorted(self):
        reg = TimerRegistry()
        for t in (30.0, 10.0, 20.0):
            reg.register(TimerEntry(t, f"p{t}", "x"))
        assert [e.fire_time_s for e in reg.entries()] == [10.0, 20.0, 30.0]


class TestWakingDate:
    def test_earliest_service_timer_wins(self):
        timer = ServiceTimer("backup", period_s=86400.0, first_fire_s=7200.0)
        host, _ = make_host(timers=(timer,))
        date = compute_waking_date(host, now=0.0)
        assert date == pytest.approx(7200.0)

    def test_daemon_timers_filtered(self):
        host, _ = make_host(timers=())
        # Only daemon timers exist: no valid waking date.
        assert compute_waking_date(host, now=0.0) is None

    def test_registry_contains_daemons_and_services(self):
        timer = ServiceTimer("job", period_s=3600.0)
        host, _ = make_host(n_vms=2, timers=(timer,))
        reg = build_host_registry(host, now=0.0)
        assert len(reg) == len(DEFAULT_BLACKLIST) + 2


class TestGrace:
    def test_bounds(self):
        assert grace_time_s(1.0) == pytest.approx(DEFAULT_PARAMS.grace_min_s)
        assert grace_time_s(0.0) == pytest.approx(DEFAULT_PARAMS.grace_max_s)

    def test_monotone_decreasing_in_probability(self):
        values = [grace_time_s(p) for p in np.linspace(0, 1, 11)]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_exponential_midpoint(self):
        # Geometric mean of bounds at p = 0.5.
        expected = math.sqrt(DEFAULT_PARAMS.grace_min_s * DEFAULT_PARAMS.grace_max_s)
        assert grace_time_s(0.5) == pytest.approx(expected)

    def test_disabled_grace_is_zero(self):
        params = DEFAULT_PARAMS.replace(use_grace=False)
        assert grace_time_s(0.3, params) == 0.0
        assert grace_from_raw_ip(-1.0, params) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            grace_time_s(1.5)

    def test_raw_ip_scaling(self):
        """A host weeks-deep in activity saturates to the max window."""
        assert grace_from_raw_ip(-20 * SIGMA) == pytest.approx(
            DEFAULT_PARAMS.grace_max_s)
        assert grace_from_raw_ip(20 * SIGMA) == pytest.approx(
            DEFAULT_PARAMS.grace_min_s)
        assert grace_from_raw_ip(0.0) == pytest.approx(
            math.sqrt(DEFAULT_PARAMS.grace_min_s * DEFAULT_PARAMS.grace_max_s))

    @given(st.floats(min_value=-1.0, max_value=1.0))
    def test_grace_always_within_bounds(self, raw_ip):
        g = grace_from_raw_ip(raw_ip)
        assert DEFAULT_PARAMS.grace_min_s <= g <= DEFAULT_PARAMS.grace_max_s


class TestSuspendingModule:
    def test_idle_host_suspends(self):
        host, _ = make_host()
        module = SuspendingModule(host)
        verdict = module.evaluate(now=100.0)
        assert verdict.should_suspend
        assert verdict.decision is SuspendDecision.SUSPEND

    def test_active_vm_blocks(self):
        host, (vm,) = make_host()
        vm.current_activity = 0.2
        verdict = SuspendingModule(host).evaluate(now=100.0)
        assert verdict.decision is SuspendDecision.ACTIVE

    def test_blocked_io_blocks(self):
        host, (vm,) = make_host()
        vm.blocked_io = True
        verdict = SuspendingModule(host).evaluate(now=100.0)
        assert verdict.decision is SuspendDecision.BLOCKED_IO

    def test_grace_blocks(self):
        host, _ = make_host()
        host.grace_until = 500.0
        verdict = SuspendingModule(host).evaluate(now=100.0)
        assert verdict.decision is SuspendDecision.IN_GRACE

    def test_not_running_state(self):
        host, _ = make_host()
        host.begin_suspend(1.0)
        verdict = SuspendingModule(host).evaluate(now=2.0)
        assert verdict.decision is SuspendDecision.NOT_RUNNING

    def test_empty_host_is_not_this_modules_job(self):
        host = Host("h")
        verdict = SuspendingModule(host).evaluate(now=1.0)
        assert verdict.decision is SuspendDecision.EMPTY

    def test_waking_date_attached(self):
        timer = ServiceTimer("cron", period_s=3600.0, first_fire_s=1800.0)
        host, _ = make_host(timers=(timer,))
        verdict = SuspendingModule(host).evaluate(now=100.0)
        assert verdict.should_suspend
        assert verdict.waking_date_s == pytest.approx(1800.0)

    def test_no_timer_means_indefinite_sleep(self):
        host, _ = make_host()
        verdict = SuspendingModule(host).evaluate(now=100.0)
        assert verdict.waking_date_s is None

    def test_decision_counts(self):
        host, (vm,) = make_host()
        module = SuspendingModule(host)
        module.evaluate(1.0)
        vm.current_activity = 0.5
        module.evaluate(2.0)
        assert module.decision_counts[SuspendDecision.SUSPEND] == 1
        assert module.decision_counts[SuspendDecision.ACTIVE] == 1
