"""Remaining coverage: serialization errors, hourly offsets, VM details,
waking-module edge cases, trace utilities."""

import numpy as np
import pytest

from repro.cluster import (
    DataCenter,
    EventSimulator,
    Host,
    ServiceTimer,
    TESTBED_VM,
    VM,
)
from repro.core import IdlenessModel, save_model
from repro.sim.hourly import HourlyConfig, HourlySimulator
from repro.traces.synthetic import always_idle_trace, daily_backup_trace
from repro.waking import WakingModule


class TestSerializeErrors:
    def test_version_mismatch_rejected(self, tmp_path):
        import numpy as np

        from repro.core.serialize import load_model

        model = IdlenessModel()
        path = tmp_path / "m.npz"
        save_model(model, path)
        # Corrupt the version field.
        data = dict(np.load(path))
        data["version"] = np.array(99)
        np.savez(path, **data)
        with pytest.raises(ValueError):
            load_model(path)

    def test_scalar_loader_rejects_fleet_file(self, tmp_path):
        from repro.core import FleetIdlenessModel, save_fleet
        from repro.core.serialize import load_model

        fleet = FleetIdlenessModel(2)
        path = tmp_path / "f.npz"
        save_fleet(fleet, path)
        with pytest.raises(ValueError):
            load_model(path)


class TestVMDetails:
    def test_default_ip_address_stable(self):
        a = VM("same-name", always_idle_trace(24), TESTBED_VM)
        b = VM("same-name", always_idle_trace(24), TESTBED_VM)
        assert a.ip_address == b.ip_address

    def test_explicit_ip_respected(self):
        vm = VM("v", always_idle_trace(24), TESTBED_VM, ip_address="1.2.3.4")
        assert vm.ip_address == "1.2.3.4"

    def test_dirty_rate_follows_activity(self):
        vm = VM("v", always_idle_trace(24), TESTBED_VM)
        vm.current_activity = 0.7
        assert vm.dirty_page_rate == pytest.approx(0.7)

    def test_idleness_probability_helpers(self):
        vm = VM("v", daily_backup_trace(days=30), TESTBED_VM)
        for h in range(30 * 24):
            vm.model.observe(h, vm.activity_at(h))
        hour = 30 * 24 + 14  # 2 pm: idle for this VM
        assert vm.idleness_probability(hour) > 0.5
        assert vm.raw_ip(hour) > 0.0

    def test_timer_tuple_preserved(self):
        t = ServiceTimer("x", period_s=60.0)
        vm = VM("v", always_idle_trace(24), TESTBED_VM, timers=(t,))
        assert vm.timers[0].name == "x"


class TestHourlyStartOffsets:
    def test_start_hour_shifts_calendar(self):
        """Starting mid-week indexes different weekday slots."""
        def run_from(start_hour):
            host = Host("h")
            dc = DataCenter([host])
            vm = VM("v", daily_backup_trace(days=30), TESTBED_VM)
            dc.place(vm, host)

            class Passive:
                name = "p"
                uses_idleness = True

                def observe_hour(self, t):
                    pass

                def step(self, t, now, executor=None):
                    return 0

            sim = HourlySimulator(dc, Passive(),
                                  config=HourlyConfig(power_off_empty=False))
            sim.run(48, start_hour=start_hour)
            return vm.model.hours_observed

        assert run_from(0) == run_from(72) == 48

    def test_meter_duration_with_offset(self):
        host = Host("h")
        dc = DataCenter([host])
        dc.place(VM("v", always_idle_trace(48), TESTBED_VM), host)

        class Passive:
            name = "p"
            uses_idleness = False

            def observe_hour(self, t):
                pass

            def step(self, t, now, executor=None):
                return 0

        sim = HourlySimulator(dc, Passive(),
                              config=HourlyConfig(power_off_empty=False))
        sim.run(24, start_hour=100)
        # The meter starts at t=0 but the sim begins at hour 100: the
        # pre-simulation era is charged at the initial operating point.
        assert host.meter.last_time == pytest.approx(124 * 3600.0)


class TestWakingModuleEdges:
    def test_restore_rearms_scheduled_wakes(self):
        sim = EventSimulator()
        sent = []
        module = WakingModule("wm", sim, lambda p, t: sent.append((p, t)))
        host = Host("h1")
        host.add_vm(VM("v", always_idle_trace(24), TESTBED_VM))
        module.register_suspension(host, waking_date_s=500.0)
        snapshot = module.snapshot()

        fresh = WakingModule("wm2", sim, lambda p, t: sent.append((p, t)))
        fresh.restore(snapshot)
        module.fail()  # original dies; its events are cancelled
        sim.run_until(600.0)
        assert len(sent) == 1  # only the restored module fired

    def test_restore_ignores_none_dates(self):
        sim = EventSimulator()
        module = WakingModule("wm", sim, lambda p, t: None)
        host = Host("h1")
        host.add_vm(VM("v", always_idle_trace(24), TESTBED_VM))
        module.register_suspension(host, waking_date_s=None)
        fresh = WakingModule("wm2", sim, lambda p, t: None)
        fresh.restore(module.snapshot())
        assert sim.pending == 0

    def test_wake_in_the_past_fires_immediately(self):
        """A waking date closer than the lead time fires right away."""
        sim = EventSimulator(start_time=100.0)
        sent = []
        module = WakingModule("wm", sim, lambda p, t: sent.append(t))
        host = Host("h1")
        host.add_vm(VM("v", always_idle_trace(24), TESTBED_VM))
        module.register_suspension(host, waking_date_s=100.2)
        sim.run()
        assert sent == [100.0]


class TestTraceUtilities:
    def test_with_name_preserves_data(self):
        tr = daily_backup_trace(days=2)
        renamed = tr.with_name("other")
        assert renamed.name == "other"
        np.testing.assert_array_equal(renamed.activities, tr.activities)
        assert renamed.kind is tr.kind

    def test_len_dunder(self):
        assert len(daily_backup_trace(days=2)) == 48

    def test_mean_active_level_empty(self):
        assert always_idle_trace(24).mean_active_level == 0.0
