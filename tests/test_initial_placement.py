"""Tests for the VM-lifecycle support and the initial-placement study."""

import pytest

from repro.cluster import DataCenter, Host, PlacementError, TESTBED_VM, VM
from repro.traces.synthetic import always_idle_trace, slmu_trace


class TestVMRemoval:
    def test_remove_frees_capacity(self):
        host = Host("h")
        dc = DataCenter([host])
        vm = VM("v", always_idle_trace(48), TESTBED_VM)
        dc.place(vm, host)
        dc.remove(vm, now=3600.0)
        assert host.vms == []
        assert host.meter.total_seconds == pytest.approx(3600.0)
        # The slot is reusable.
        dc.place(VM("w", always_idle_trace(48), TESTBED_VM), host)

    def test_remove_unplaced_raises(self):
        dc = DataCenter([Host("h")])
        with pytest.raises(PlacementError):
            dc.remove(VM("ghost", always_idle_trace(48), TESTBED_VM), now=0.0)

    def test_remove_tolerates_precharged_meter(self):
        host = Host("h")
        dc = DataCenter([host])
        vm = VM("v", always_idle_trace(48), TESTBED_VM)
        dc.place(vm, host)
        host.sync_meter(100.5)  # transition charged past the boundary
        dc.remove(vm, now=100.0)  # must not raise
        assert host.vms == []


class TestInitialPlacementExperiment:
    @pytest.fixture(scope="class")
    def data(self):
        from repro.experiments import initial_placement

        return initial_placement.run(days=3, train_days=7)

    def test_both_schedulers_place_everything(self, data):
        assert data.drowsy.placed == data.vanilla.placed > 0
        assert data.drowsy.rejected == data.vanilla.rejected == 0

    def test_weigher_reduces_disturbances(self, data):
        assert (data.drowsy.sleepy_hosts_disturbed
                <= data.vanilla.sleepy_hosts_disturbed)

    def test_weigher_does_not_cost_energy(self, data):
        assert data.drowsy.energy_kwh <= data.vanilla.energy_kwh * 1.05

    def test_render(self, data):
        assert "idleness weigher" in data.render()

    def test_slmu_arrivals_terminate(self):
        """SLMU tasks leave the DC after their lifetime."""
        from repro.experiments.initial_placement import _arrivals

        from repro.core.params import DEFAULT_PARAMS

        arrivals = _arrivals(days=3, start_hour=0, seed=1,
                             params=DEFAULT_PARAMS)
        slmus = [vm for _, vm in arrivals if vm.name.startswith("new-slmu")]
        assert slmus, "stream should contain SLMU tasks"
        assert all(hasattr(vm, "terminate_after_h") for vm in slmus)

    def test_slmu_trace_helper(self):
        tr = slmu_trace(lifetime_hours=4, total_hours=20)
        assert (tr.activities[:4] > 0).all()
        assert (tr.activities[4:] == 0).all()
