"""Crash-safe execution (DESIGN.md §16).

Covers the resilience layer's three contracts:

* **checkpoint/resume determinism** — a run resumed from *any*
  hour-boundary checkpoint produces a ``RunResult`` byte-identical
  (``==``, fault summary included) to the uninterrupted run, on every
  backend and under fault injection;
* **self-healing supervision** — sharded workers and sweep cells that
  are killed or hung mid-run are respawned from their last boundary
  snapshot (or from scratch), with bounded retries and degradation to
  in-process execution, without perturbing the result;
* **atomic artifacts** — checkpoints, sweep tables and run results are
  written via temp-file + rename, so a crash mid-save can never leave
  a truncated file.
"""

from __future__ import annotations

import functools
import pickle
import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.api import Simulation
from repro.api.sharded import ShardedConfig
from repro.experiments.common import build_fleet
from repro.faults import FaultPlan, HostCrashFaults, WolFaults
from repro.resilience import (
    Checkpoint,
    CheckpointError,
    CheckpointPolicy,
    ChaosCell,
    ChaosKill,
    ShardChaos,
    ShardTimeoutError,
    SupervisorPolicy,
    SweepJournal,
    atomic_target,
    atomic_write_text,
    latest_checkpoint,
    list_checkpoints,
    run_chaos_cell,
    supervised_map,
)
from repro.sim.sweep import SweepRunner, SweepTable, grid

H = 6
SHARD_H = 8

LOSSY = FaultPlan(name="lossy",
                  wol=WolFaults(loss_probability=0.25),
                  crashes=HostCrashFaults(rate_per_host_per_h=0.05,
                                          recover_after_s=900.0))

FAST_POLICY = SupervisorPolicy(max_restarts=3, backoff_base_s=0.01,
                               deadline_s=30.0)


def small_fleet():
    return build_fleet(n_hosts=4, n_vms=12, llmi_fraction=0.5,
                       hours=H, seed=3)


def shard_fleet():
    # Unique VM IPs keep the fleet inside the sharded waking envelope
    # (the parity precondition the sharded suite documents).
    dc = build_fleet(n_hosts=6, n_vms=18, llmi_fraction=0.5,
                     hours=SHARD_H, seed=3)
    for i, vm in enumerate(dc.vms):
        vm.ip_address = f"10.9.0.{i + 1}"
    return dc


@functools.lru_cache(maxsize=None)
def plain_result(backend: str, faulty: bool):
    """The uninterrupted oracle run, computed once per (backend, plan)."""
    sim = Simulation(small_fleet(), "drowsy", backend, seed=3,
                     faults=LOSSY if faulty else None)
    return sim.run(H)


@functools.lru_cache(maxsize=None)
def sharded_base():
    sim = Simulation(shard_fleet(), "drowsy", "sharded", seed=3,
                     config=ShardedConfig(shards=3, inner="event",
                                          workers=0))
    return sim.run(SHARD_H)


# ----------------------------------------------------------------------
# checkpoint/resume: in-process backends
# ----------------------------------------------------------------------
class TestCheckpointResume:
    @pytest.mark.parametrize("backend", ["hourly", "event"])
    @pytest.mark.parametrize("faulty", [False, True])
    def test_resume_every_boundary_byte_identical(self, tmp_path, backend,
                                                  faulty):
        base = plain_result(backend, faulty)
        sim = Simulation(small_fleet(), "drowsy", backend, seed=3,
                         faults=LOSSY if faulty else None,
                         checkpoint=CheckpointPolicy(dir=str(tmp_path)))
        assert sim.run(H) == base  # checkpointing perturbs nothing
        ckpts = sorted(tmp_path.glob("*.ckpt"))
        assert len(ckpts) == H
        for path in ckpts:
            resumed = Simulation.resume(path).run()
            assert resumed == base
            assert resumed.fault_summary == base.fault_summary

    def test_scenario_churn_resume(self, tmp_path):
        base = Simulation.from_scenario(
            "dev-churn", seed=1, backend="event", hours=8,
            scale=0.25).run()
        sim = Simulation.from_scenario(
            "dev-churn", seed=1, backend="event", hours=8, scale=0.25,
            checkpoint=CheckpointPolicy(dir=str(tmp_path), every_h=3))
        assert sim.run() == base
        for path in sorted(tmp_path.glob("*.ckpt")):
            assert Simulation.resume(path).run() == base

    def test_resume_directory_picks_most_advanced(self, tmp_path):
        sim = Simulation(small_fleet(), "drowsy", "hourly", seed=3,
                         checkpoint=CheckpointPolicy(dir=str(tmp_path),
                                                     every_h=2))
        sim.run(H)
        resumed = Simulation.resume(tmp_path)
        assert resumed.engine._next_hour == H
        assert resumed.run() == plain_result("hourly", False)

    def test_resumed_run_rejects_new_horizon(self, tmp_path):
        sim = Simulation(small_fleet(), "drowsy", "hourly", seed=3,
                         checkpoint=CheckpointPolicy(dir=str(tmp_path)))
        sim.run(H)
        resumed = Simulation.resume(tmp_path)
        with pytest.raises(ValueError, match="original horizon"):
            resumed.run(H + 4)

    def test_checkpoint_every_and_keep(self, tmp_path):
        sim = Simulation(small_fleet(), "drowsy", "hourly", seed=3,
                         checkpoint=CheckpointPolicy(dir=str(tmp_path),
                                                     every_h=2, keep=2))
        sim.run(H)
        names = sorted(p.name for p in tmp_path.glob("*.ckpt"))
        assert names == ["run-h00004.ckpt", "run-h00006.ckpt"]

    def test_policy_validation(self):
        with pytest.raises(ValueError, match="every_h"):
            CheckpointPolicy(dir="x", every_h=0)
        with pytest.raises(ValueError, match="keep"):
            CheckpointPolicy(dir="x", keep=-1)

    def test_default_policy_is_taken_and_label_uniquified(self, tmp_path):
        from repro.resilience.checkpoint import set_default_policy

        set_default_policy(CheckpointPolicy(dir=str(tmp_path), every_h=3))
        try:
            Simulation(small_fleet(), "drowsy", "hourly", seed=3).run(H)
            Simulation(small_fleet(), "drowsy", "hourly", seed=3).run(H)
        finally:
            set_default_policy(None)
        labels = {p.name.rsplit("-h", 1)[0]
                  for p in tmp_path.glob("*.ckpt")}
        assert labels == {"run", "run-2"}
        # cleared: no further simulations checkpoint
        Simulation(small_fleet(), "drowsy", "hourly", seed=3).run(H)
        assert len(list(tmp_path.glob("*.ckpt"))) == 4


# ----------------------------------------------------------------------
# checkpoint files: versioning, digest, discovery
# ----------------------------------------------------------------------
class TestCheckpointFiles:
    def _one_checkpoint(self, tmp_path) -> Path:
        sim = Simulation(small_fleet(), "drowsy", "hourly", seed=3,
                         checkpoint=CheckpointPolicy(dir=str(tmp_path),
                                                     every_h=H))
        sim.run(H)
        (path,) = tmp_path.glob("*.ckpt")
        return path

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoint"):
            Checkpoint.load(tmp_path / "absent.ckpt")

    def test_non_checkpoint_file_raises(self, tmp_path):
        path = tmp_path / "junk.ckpt"
        path.write_bytes(pickle.dumps({"magic": "something-else"}))
        with pytest.raises(CheckpointError, match="not a repro checkpoint"):
            Checkpoint.load(path)

    def test_version_mismatch_raises(self, tmp_path):
        path = self._one_checkpoint(tmp_path)
        wrapper = pickle.loads(path.read_bytes())
        wrapper["version"] = 99
        path.write_bytes(pickle.dumps(wrapper))
        with pytest.raises(CheckpointError, match="format 99"):
            Checkpoint.load(path)

    def test_corrupt_payload_fails_digest(self, tmp_path):
        path = self._one_checkpoint(tmp_path)
        wrapper = pickle.loads(path.read_bytes())
        payload = bytearray(wrapper["payload"])
        payload[len(payload) // 2] ^= 0xFF
        wrapper["payload"] = bytes(payload)
        path.write_bytes(pickle.dumps(wrapper))
        with pytest.raises(CheckpointError, match="digest"):
            Checkpoint.load(path)

    def test_discovery_skips_junk_and_orders_by_hour(self, tmp_path):
        sim = Simulation(small_fleet(), "drowsy", "hourly", seed=3,
                         checkpoint=CheckpointPolicy(dir=str(tmp_path),
                                                     every_h=2))
        sim.run(H)
        (tmp_path / "broken.ckpt").write_bytes(b"not a pickle at all")
        infos = list_checkpoints(tmp_path)
        assert [i.meta["hour"] for i in infos] == [1, 3, 5]
        assert "hourly" in infos[-1].describe()
        assert latest_checkpoint(tmp_path).name == "run-h00006.ckpt"

    def test_latest_checkpoint_empty_dir_raises(self, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoints"):
            latest_checkpoint(tmp_path)
        assert list_checkpoints(tmp_path / "absent") == []


# ----------------------------------------------------------------------
# sharded backend: supervision, chaos, checkpoint/resume
# ----------------------------------------------------------------------
class TestShardedResilience:
    def test_config_validation(self):
        with pytest.raises(ValueError, match="timeout_s"):
            ShardedConfig(shards=2, timeout_s=0.0)
        with pytest.raises(ValueError, match="workers >= 1"):
            ShardedConfig(shards=2, workers=0,
                          chaos=ShardChaos(kill_worker_at_hour=((0, 1),)))

    def test_thread_mode_checkpoint_resume(self, tmp_path):
        sim = Simulation(shard_fleet(), "drowsy", "sharded", seed=3,
                         config=ShardedConfig(shards=3, inner="event",
                                              workers=0),
                         checkpoint=CheckpointPolicy(dir=str(tmp_path),
                                                     every_h=3))
        assert sim.run(SHARD_H) == sharded_base()
        ckpts = sorted(tmp_path.glob("*.ckpt"))
        assert len(ckpts) == 2
        for path in ckpts:
            assert Simulation.resume(path).run() == sharded_base()

    @settings(deadline=None, max_examples=3)
    @given(data=st.data())
    def test_property_chaos_byte_identical(self, data):
        """Kill or hang a random worker at a random hour; the
        supervised run's result is byte-identical regardless."""
        shard = data.draw(st.integers(0, 2), label="shard")
        hour = data.draw(st.integers(1, SHARD_H - 2), label="hour")
        if data.draw(st.booleans(), label="kill"):
            chaos = ShardChaos(kill_worker_at_hour=((shard, hour),))
            policy = FAST_POLICY
        else:
            chaos = ShardChaos(hang_worker_at_hour=((shard, hour),),
                               hang_s=60.0)
            policy = SupervisorPolicy(max_restarts=3, backoff_base_s=0.01,
                                      deadline_s=3.0)
        sim = Simulation(shard_fleet(), "drowsy", "sharded", seed=3,
                         config=ShardedConfig(shards=3, inner="event",
                                              workers=2, supervise=policy,
                                              chaos=chaos))
        assert sim.run(SHARD_H) == sharded_base()

    def test_degrades_to_threads_when_restarts_exhausted(self):
        policy = SupervisorPolicy(max_restarts=0, backoff_base_s=0.01,
                                  deadline_s=30.0)
        chaos = ShardChaos(kill_worker_at_hour=((2, 3),))
        sim = Simulation(shard_fleet(), "drowsy", "sharded", seed=3,
                         config=ShardedConfig(shards=3, inner="event",
                                              workers=2, supervise=policy,
                                              chaos=chaos))
        assert sim.run(SHARD_H) == sharded_base()
        assert sim.engine._workers_mode == 0  # finished on threads

    def test_chaos_plus_checkpoint_resume(self, tmp_path):
        chaos = ShardChaos(kill_worker_at_hour=((0, 2), (1, 6)))
        sim = Simulation(shard_fleet(), "drowsy", "sharded", seed=3,
                         config=ShardedConfig(shards=3, inner="event",
                                              workers=2,
                                              supervise=FAST_POLICY,
                                              chaos=chaos),
                         checkpoint=CheckpointPolicy(dir=str(tmp_path),
                                                     every_h=3))
        assert sim.run(SHARD_H) == sharded_base()
        for path in sorted(tmp_path.glob("*.ckpt")):
            assert Simulation.resume(path).run() == sharded_base()

    def test_unsupervised_hang_raises_named_timeout(self):
        chaos = ShardChaos(hang_worker_at_hour=((1, 2),), hang_s=60.0)
        sim = Simulation(shard_fleet(), "drowsy", "sharded", seed=3,
                         config=ShardedConfig(shards=3, inner="event",
                                              workers=2, timeout_s=2.0,
                                              chaos=chaos))
        with pytest.raises(ShardTimeoutError) as excinfo:
            sim.run(SHARD_H)
        exc = excinfo.value
        assert exc.shard == 1
        assert exc.hour == 2
        assert exc.elapsed_s >= 2.0
        assert exc.timeout_s == 2.0
        assert "shard 1 timed out at hour 2" in str(exc)


# ----------------------------------------------------------------------
# supervised sweep cells
# ----------------------------------------------------------------------
def _double(x):
    """Cheap picklable cell runner for supervision-machinery tests."""
    return x * 2


def _boom(x):
    raise ValueError(f"cell {x} exploded")


class TestSupervisedMap:
    def test_serial_path_orders_and_journals(self):
        seen = []
        out = supervised_map(_double, [3, 1, 2], workers=1,
                             on_result=lambda i, r: seen.append((i, r)))
        assert out == [6, 2, 4]
        assert seen == [(0, 6), (1, 2), (2, 4)]

    def test_skip_suppresses_recompute_and_journal(self):
        seen = []
        out = supervised_map(_boom, [1, 2], workers=1,
                             skip={0: "a", 1: "b"},
                             on_result=lambda i, r: seen.append(i))
        assert out == ["a", "b"]
        assert seen == []

    def test_killed_worker_respawns_result_identical(self, tmp_path):
        kill = ChaosKill(dir=str(tmp_path), tag="map")
        cells = [ChaosCell(cell=i, kill=(kill if i == 1 else None),
                           runner=_double)
                 for i in range(6)]
        out = supervised_map(run_chaos_cell, cells, workers=2,
                             policy=FAST_POLICY)
        assert out == [0, 2, 4, 6, 8, 10]
        assert kill.sentinel.exists()  # the chaos really fired

    def test_degrades_to_serial_when_restarts_exhausted(self, tmp_path):
        kill = ChaosKill(dir=str(tmp_path), tag="degrade")
        cells = [ChaosCell(cell=i, kill=(kill if i == 0 else None),
                           runner=_double)
                 for i in range(4)]
        policy = SupervisorPolicy(max_restarts=0, backoff_base_s=0.01,
                                  deadline_s=30.0, degrade=True)
        assert supervised_map(run_chaos_cell, cells, workers=2,
                              policy=policy) == [0, 2, 4, 6]

    def test_degrade_disabled_raises(self, tmp_path):
        kill = ChaosKill(dir=str(tmp_path), tag="fatal")
        cells = [ChaosCell(cell=i, kill=(kill if i == 0 else None),
                           runner=_double)
                 for i in range(4)]
        policy = SupervisorPolicy(max_restarts=0, backoff_base_s=0.01,
                                  deadline_s=30.0, degrade=False)
        with pytest.raises(RuntimeError, match="degrade disabled"):
            supervised_map(run_chaos_cell, cells, workers=2, policy=policy)

    def test_cell_exception_propagates_with_traceback(self):
        with pytest.raises(RuntimeError, match="exploded"):
            supervised_map(_boom, [1, 2], workers=2, policy=FAST_POLICY)


# ----------------------------------------------------------------------
# sweep journal + resumable SweepRunner
# ----------------------------------------------------------------------
class TestSweepJournal:
    def test_roundtrip_and_truncated_tail(self, tmp_path):
        journal = SweepJournal(tmp_path / "j")
        assert journal.load() == {}
        journal.append(0, "alpha")
        journal.append(3, ("beta", 2.5))
        with open(journal.path, "ab") as fh:
            fh.write(b"\x80truncated-mid-append")
        assert journal.load() == {0: "alpha", 3: ("beta", 2.5)}
        journal.clear()
        assert journal.load() == {}

    def test_runner_resumes_from_journal(self, tmp_path):
        cells = grid(controllers=("drowsy", "neat"), sizes=(8,),
                     seeds=(1, 2), hours=4)
        serial = SweepRunner().run(cells)
        journal = SweepJournal(tmp_path / "sweep.journal")
        journal.append(0, serial.rows[0])
        journal.append(2, serial.rows[2])
        table = SweepRunner(workers=1, journal=journal).run(cells)
        assert table == serial
        assert set(journal.load()) == {0, 1, 2, 3}
        # a completed journal short-circuits the whole sweep
        assert SweepRunner(workers=1,
                           journal=str(journal.path)).run(cells) == serial


# ----------------------------------------------------------------------
# atomic artifact writes
# ----------------------------------------------------------------------
class TestAtomicWrites:
    def test_atomic_write_replaces_without_debris(self, tmp_path):
        target = tmp_path / "out.txt"
        target.write_text("old")
        atomic_write_text(target, "new")
        assert target.read_text() == "new"
        assert list(tmp_path.iterdir()) == [target]

    def test_failed_write_leaves_target_untouched(self, tmp_path):
        target = tmp_path / "out.txt"
        target.write_text("old")
        with pytest.raises(RuntimeError):
            with atomic_target(target) as tmp:
                tmp.write_text("half-writ")
                raise RuntimeError("crash mid-save")
        assert target.read_text() == "old"
        assert list(tmp_path.iterdir()) == [target]

    def test_sweep_table_saves_are_atomic(self, tmp_path):
        cells = grid(controllers=("drowsy",), sizes=(8,), seeds=(1, 2),
                     hours=4)
        table = SweepRunner().run(cells)
        csv_path = tmp_path / "t.csv"
        table.save(csv_path)
        assert SweepTable.load(csv_path) == table
        db = tmp_path / "t.sqlite"
        table.save(db)
        table.save(db)  # second call appends run 1 atomically
        assert SweepTable.from_sqlite(db, run=0) == table
        assert SweepTable.from_sqlite(db, run=1) == table
        assert sorted(p.name for p in tmp_path.iterdir()) == [
            "t.csv", "t.sqlite"]

    def test_run_result_save_is_atomic(self, tmp_path):
        result = plain_result("hourly", False)
        path = tmp_path / "result.csv"
        result.save(path)
        assert type(result).load(path) == result
        assert list(tmp_path.iterdir()) == [path]


# ----------------------------------------------------------------------
# property suite: kill/resume at a random hour, any backend
# ----------------------------------------------------------------------
class TestResumeProperties:
    @settings(deadline=None, max_examples=8)
    @given(data=st.data())
    def test_resume_from_random_boundary(self, data):
        backend = data.draw(st.sampled_from(["hourly", "event"]),
                            label="backend")
        faulty = data.draw(st.booleans(), label="faulty")
        every = data.draw(st.integers(1, 3), label="every_h")
        base = plain_result(backend, faulty)
        with tempfile.TemporaryDirectory() as d:
            sim = Simulation(small_fleet(), "drowsy", backend, seed=3,
                             faults=LOSSY if faulty else None,
                             checkpoint=CheckpointPolicy(dir=d,
                                                         every_h=every))
            assert sim.run(H) == base
            ckpts = sorted(Path(d).glob("*.ckpt"))
            assert len(ckpts) == H // every
            pick = data.draw(st.integers(0, len(ckpts) - 1), label="pick")
            resumed = Simulation.resume(ckpts[pick]).run()
            assert resumed == base
            assert resumed.fault_summary == base.fault_summary


# ----------------------------------------------------------------------
# CLI round trip
# ----------------------------------------------------------------------
class TestCli:
    def test_checkpoint_list_resume_roundtrip(self, tmp_path, capsys):
        from repro.cli import main

        ckdir = tmp_path / "ck"
        assert main(["scenario", "run", "steady-llmu", "--hours", "4",
                     "--scale", "0.25", "--checkpoint-dir", str(ckdir),
                     "--checkpoint-every", "2"]) == 0
        assert main(["list", "checkpoints", "--dir", str(ckdir)]) == 0
        out = capsys.readouterr().out
        assert "run-h00002.ckpt" in out
        assert "run-h00004.ckpt" in out
        assert main(["resume", str(ckdir / "run-h00002.ckpt"),
                     "--out", str(tmp_path / "res.csv")]) == 0
        assert "resumed hourly run" in capsys.readouterr().out
        assert (tmp_path / "res.csv").exists()
        # the default policy was cleared when the command finished
        from repro.resilience.checkpoint import take_default_policy

        assert take_default_policy() is None

    def test_journaled_sweep_clears_journal_on_success(self, tmp_path,
                                                       capsys):
        from repro.cli import main

        ckdir = tmp_path / "ckp"
        assert main(["sweep", "--controllers", "drowsy", "--sizes", "8",
                     "--seeds", "1", "--hours", "4",
                     "--checkpoint-dir", str(ckdir)]) == 0
        assert "sweep results" in capsys.readouterr().out
        assert not (ckdir / "sweep.journal").exists()
