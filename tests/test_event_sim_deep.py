"""Deeper event-driven simulation tests: wake paths, queueing, stats."""

import numpy as np
import pytest

from repro.cluster import (
    DataCenter,
    Host,
    HostCapacity,
    PowerState,
    ResourceSpec,
    ServiceTimer,
    VM,
)
from repro.consolidation import NeatController
from repro.core.params import DEFAULT_PARAMS
from repro.network.requests import Request
from repro.sim.event_driven import EventConfig, EventDrivenSimulation
from repro.traces.base import ActivityTrace
from repro.traces.synthetic import always_idle_trace

CAP = HostCapacity(cpus=8, memory_mb=16384, cpu_overcommit=1.0)
FLAVOR = ResourceSpec(cpus=2, memory_mb=6144)


def single_host_sim(trace=None, timers=(), interactive=True, params=DEFAULT_PARAMS,
                    config=None):
    host = Host("h0", CAP, params)
    dc = DataCenter([host], params)
    vm = VM("v0", trace or always_idle_trace(72), FLAVOR, params=params,
            timers=timers, interactive=interactive, ip_address="10.7.0.1")
    dc.place(vm, host)
    sim = EventDrivenSimulation(dc, NeatController(dc, params=params), params,
                                config or EventConfig(seed=3))
    return sim, dc, host, vm


class TestWakePaths:
    def test_request_wol_resume_flush_sequence(self):
        sim, dc, host, vm = single_host_sim()
        req = Request(arrival_s=0.0, vm_name="v0", service_time_s=0.05)

        def submit():
            req.arrival_s = sim.sim.now
            sim.switch.submit_request(req)

        sim.sim.schedule_at(120.0, submit)  # host asleep by then
        sim.run(1)
        assert req.completed
        assert req.woke_host
        # Latency = resume latency + service time (within scheduling noise).
        expected = DEFAULT_PARAMS.resume_latency_s + 0.05
        assert req.latency_s == pytest.approx(expected, abs=0.1)

    def test_scheduled_wake_fires_before_timer(self):
        timer = ServiceTimer("cron", period_s=3600.0, first_fire_s=1800.0)
        sim, dc, host, vm = single_host_sim(timers=(timer,), interactive=False)
        sim.run(1)
        # Host resumed shortly before 1800 s.
        resume_times = [t.time for t in host.transitions
                        if t.to_state is PowerState.ON]
        assert resume_times, "expected an anticipated resume"
        first = min(resume_times)
        assert 1700.0 < first <= 1800.0

    def test_multiple_requests_share_one_wake(self):
        sim, dc, host, vm = single_host_sim()

        def burst():
            for i in range(5):
                sim.switch.submit_request(Request(
                    arrival_s=sim.sim.now, vm_name="v0",
                    service_time_s=0.02))

        sim.sim.schedule_at(200.0, burst)
        sim.run(1)
        assert len(sim.switch.log.requests) == 5
        assert host.resume_count == 1

    def test_wol_counters(self):
        sim, dc, host, vm = single_host_sim()

        def submit():
            sim.switch.submit_request(Request(
                arrival_s=sim.sim.now, vm_name="v0", service_time_s=0.02))

        sim.sim.schedule_at(100.0, submit)
        result = sim.run(1)
        assert result.wol_sent >= 1


class TestSuspendDynamics:
    def test_first_suspend_happens_after_check_period(self):
        sim, dc, host, vm = single_host_sim()
        sim.run(1)
        first_suspend = min(t.time for t in host.transitions
                            if t.to_state is PowerState.SUSPENDING)
        assert first_suspend == pytest.approx(
            DEFAULT_PARAMS.suspend_check_period_s, abs=1.0)

    def test_check_period_respected_while_active(self):
        trace = ActivityTrace("busy", np.full(72, 0.5))
        # Fixed-period contract: one evaluation per check period.  The
        # default adaptively *widens* the period on ACTIVE streaks
        # (~15x fewer checks here), so pin it off.
        sim, dc, host, vm = single_host_sim(
            trace=trace, config=EventConfig(seed=3, adaptive_checks=False))
        sim.run(2)
        # Active host: evaluations happen but no suspend.
        module = sim.suspending["h0"]
        from repro.suspend.module import SuspendDecision

        assert module.decision_counts[SuspendDecision.ACTIVE] > 100
        assert host.suspend_count == 0

    def test_adaptive_default_widens_active_checks(self):
        """The flip side: with the default (adaptive) config the same
        always-busy host is checked far less often, and still never
        suspends."""
        from repro.suspend.module import SuspendDecision

        trace = ActivityTrace("busy", np.full(72, 0.5))
        sim, dc, host, vm = single_host_sim(trace=trace)
        assert sim.config.adaptive_checks is True
        sim.run(2)
        module = sim.suspending["h0"]
        active = module.decision_counts[SuspendDecision.ACTIVE]
        assert 0 < active < 2 * 3600 / DEFAULT_PARAMS.suspend_check_period_s / 4
        assert host.suspend_count == 0

    def test_grace_prevents_immediate_resuspend(self):
        # One active hour between idle hours; after the resume the host
        # has a grace window before suspending again.
        acts = np.zeros(72)
        acts[1] = 0.4
        sim, dc, host, vm = single_host_sim(ActivityTrace("t", acts))
        sim.run(3)
        # Find resume then next suspend.
        events = [(t.time, t.to_state) for t in host.transitions]
        for i, (time_r, state) in enumerate(events):
            if state is PowerState.ON and i + 1 < len(events):
                next_suspend = events[i + 1][0]
                assert next_suspend - time_r >= DEFAULT_PARAMS.grace_min_s - 1e-6

    def test_blocked_io_vm_prevents_suspend(self):
        sim, dc, host, vm = single_host_sim()
        vm.blocked_io = True
        sim.run(1)
        assert host.suspend_count == 0
        from repro.suspend.module import SuspendDecision

        counts = sim.suspending["h0"].decision_counts
        assert counts[SuspendDecision.BLOCKED_IO] > 0


class TestEventResultConsistency:
    def test_meter_covers_duration(self):
        sim, dc, host, vm = single_host_sim()
        sim.run(4)
        assert host.meter.total_seconds == pytest.approx(4 * 3600.0)

    def test_result_counts_match_host_state(self):
        sim, dc, host, vm = single_host_sim()
        result = sim.run(4)
        assert result.suspend_cycles_by_host["h0"] == host.suspend_count
        assert result.resume_cycles_by_host["h0"] == host.resume_count
        assert result.events_processed > 0

    def test_no_pending_requests_left(self):
        sim, dc, host, vm = single_host_sim()

        def submit():
            sim.switch.submit_request(Request(
                arrival_s=sim.sim.now, vm_name="v0", service_time_s=0.02))

        sim.sim.schedule_at(100.0, submit)
        sim.run(2)
        assert sim.switch.queued_requests == 0
