"""Tests for the event-driven full-stack simulation."""

import pytest

from repro.cluster import (
    DataCenter,
    Host,
    HostCapacity,
    PowerState,
    ResourceSpec,
    ServiceTimer,
    VM,
)
from repro.consolidation import NeatController
from repro.core.params import DEFAULT_PARAMS
from repro.sim.event_driven import EventConfig, EventDrivenSimulation
from repro.traces.synthetic import always_idle_trace, daily_backup_trace, llmu_trace

CAP = HostCapacity(cpus=8, memory_mb=16384, cpu_overcommit=1.0)
FLAVOR = ResourceSpec(cpus=2, memory_mb=6144)


def build_sim(traces, params=DEFAULT_PARAMS, config=None, timers=(),
              interactive=True):
    host = Host("h0", CAP, params)
    dc = DataCenter([host], params)
    for i, tr in enumerate(traces):
        dc.place(VM(f"vm{i}", tr, FLAVOR, params=params, timers=timers,
                    interactive=interactive), host)
    ctrl = NeatController(dc, params=params)
    return EventDrivenSimulation(
        dc, ctrl, params, config or EventConfig()), dc


class TestSuspendResumeCycle:
    def test_idle_host_suspends(self):
        sim, dc = build_sim([always_idle_trace(48)])
        result = sim.run(6)
        assert result.suspended_fraction_by_host["h0"] > 0.95
        assert result.suspend_cycles_by_host["h0"] == 1

    def test_suspend_disabled(self):
        sim, dc = build_sim([always_idle_trace(48)],
                            config=EventConfig(suspend_enabled=False))
        result = sim.run(6)
        assert result.suspended_fraction_by_host["h0"] == 0.0

    def test_interactive_requests_wake_host(self):
        # Idle at night, active during hour 2 onward.
        tr = daily_backup_trace(days=2, backup_hour=2, level=0.5)
        sim, dc = build_sim([tr])
        result = sim.run(6)
        assert result.resume_cycles_by_host["h0"] >= 1
        assert result.request_summary["requests"] > 0

    def test_wake_latency_bounded_by_resume(self):
        tr = daily_backup_trace(days=2, backup_hour=2, level=0.5)
        sim, dc = build_sim([tr])
        sim.run(6)
        wake = sim.switch.log.wake_requests
        assert wake, "expected at least one request to hit a drowsy host"
        for r in wake:
            assert r.latency_s <= (DEFAULT_PARAMS.resume_latency_s
                                   + r.service_time_s + 0.2)

    def test_scheduled_wake_via_timer(self):
        """A timer-driven VM wakes its host ahead of the cron fire."""
        timer = ServiceTimer("cron", period_s=24 * 3600.0,
                             first_fire_s=2 * 3600.0)
        sim, dc = build_sim([daily_backup_trace(days=2)], timers=(timer,),
                            interactive=False)
        result = sim.run(26)
        host = dc.host("h0")
        # Host was up at hour 2 + 26 (wrap) etc.; at least 2 resumes.
        assert result.resume_cycles_by_host["h0"] >= 1
        assert result.wol_sent >= 1

    def test_energy_between_bounds(self):
        sim, dc = build_sim([always_idle_trace(48)])
        result = sim.run(10)
        s3_only = 10 * DEFAULT_PARAMS.suspend_power_w / 1000.0
        idle_only = 10 * DEFAULT_PARAMS.idle_power_w / 1000.0
        assert s3_only <= result.total_energy_kwh <= idle_only


class TestGraceInEventSim:
    @staticmethod
    def _last_resume_time(host):
        return max(t.time for t in host.transitions
                   if t.to_state is PowerState.ON)

    def test_grace_applied_after_resume(self):
        tr = daily_backup_trace(days=2, backup_hour=2, level=0.5)
        sim, dc = build_sim([tr])
        sim.run(6)
        host = dc.host("h0")
        assert host.grace_until >= (self._last_resume_time(host)
                                    + DEFAULT_PARAMS.grace_min_s)

    def test_no_grace_when_disabled(self):
        params = DEFAULT_PARAMS.replace(use_grace=False)
        tr = daily_backup_trace(days=2, backup_hour=2, level=0.5)
        sim, dc = build_sim([tr], params=params)
        sim.run(6)
        host = dc.host("h0")
        # The grace window collapses to the resume instant itself.
        assert host.grace_until <= self._last_resume_time(host) + 1e-9


class TestDeterminism:
    def test_same_seed_same_result(self):
        r1 = build_sim([daily_backup_trace(days=2, level=0.5)],
                       config=EventConfig(seed=9))[0].run(8)
        r2 = build_sim([daily_backup_trace(days=2, level=0.5)],
                       config=EventConfig(seed=9))[0].run(8)
        assert r1.total_energy_kwh == pytest.approx(r2.total_energy_kwh)
        assert r1.request_summary == r2.request_summary
        assert r1.events_processed == r2.events_processed

    def test_different_seed_differs(self):
        r1 = build_sim([llmu_trace(hours=48)], config=EventConfig(seed=1))[0].run(4)
        r2 = build_sim([llmu_trace(hours=48)], config=EventConfig(seed=2))[0].run(4)
        assert r1.request_summary["requests"] != r2.request_summary["requests"]


class TestValidation:
    def test_rejects_nonpositive_hours(self):
        sim, _ = build_sim([always_idle_trace(48)])
        with pytest.raises(ValueError):
            sim.run(0)

    def test_state_machine_consistent_after_run(self):
        sim, dc = build_sim([daily_backup_trace(days=2, level=0.4)])
        sim.run(12)
        host = dc.host("h0")
        assert host.state in (PowerState.ON, PowerState.SUSPENDED,
                              PowerState.SUSPENDING, PowerState.RESUMING)
        dc.check_invariants()
