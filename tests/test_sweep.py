"""Sharded sweep runner (DESIGN.md §9): determinism and reduction.

The hard requirement: a sweep sharded over N spawn workers produces a
result table **byte-identical** to the serial run.  Also covers the
stable-digest addresses that make cross-process determinism possible
(host MACs / VM IPs must not depend on the per-process PYTHONHASHSEED)
and the CLI/experiment wiring on top of the runner.
"""

import os
import pathlib
import subprocess
import sys

import pytest

from repro.cli import main as cli_main
from repro.experiments import fleet_sweep
from repro.sim.sweep import (
    CONTROLLER_NAMES,
    SweepCell,
    SweepRow,
    SweepRunner,
    SweepTable,
    grid,
    run_cell,
)

SRC = str(pathlib.Path(__file__).resolve().parents[1] / "src")


class TestSweepRunner:
    def test_sharded_matches_serial_byte_identical(self):
        cells = grid(controllers=("drowsy", "neat"), sizes=(16,),
                     seeds=(7, 11), hours=8)
        serial = SweepRunner(workers=1).run(cells)
        sharded = SweepRunner(workers=4).run(cells)
        assert serial.to_csv() == sharded.to_csv()
        assert serial.render() == sharded.render()
        assert serial.rows == sharded.rows

    def test_serial_rerun_deterministic(self):
        cells = grid(controllers=("drowsy",), sizes=(12,), seeds=(3,),
                     hours=6)
        a = SweepRunner(workers=1).run(cells)
        b = SweepRunner(workers=1).run(cells)
        assert a.to_csv() == b.to_csv()

    def test_map_preserves_order(self):
        runner = SweepRunner(workers=1)
        assert runner.map(lambda x: x * 2, [3, 1, 2]) == [6, 2, 4]

    def test_rejects_bad_worker_count(self):
        with pytest.raises(ValueError):
            SweepRunner(workers=0)

    def test_grid_order_is_controller_major(self):
        cells = grid(controllers=("a", "b"), sizes=(1, 2), seeds=(9,),
                     hours=1)
        assert [(c.controller, c.n_vms) for c in cells] == [
            ("a", 1), ("a", 2), ("b", 1), ("b", 2)]

    def test_run_cell_produces_row(self):
        row = run_cell(SweepCell(controller="drowsy", n_vms=8, seed=5,
                                 hours=4))
        assert isinstance(row, SweepRow)
        assert row.n_hosts == 2
        assert row.energy_kwh > 0.0
        assert 0.0 <= row.suspended_fraction <= 1.0

    def test_unknown_controller_raises(self):
        with pytest.raises(ValueError):
            run_cell(SweepCell(controller="bogus", n_vms=8, seed=5,
                               hours=2))

    def test_csv_round_trips_floats(self):
        cells = grid(controllers=("neat",), sizes=(8,), seeds=(1,), hours=4)
        table = SweepRunner(workers=1).run(cells)
        csv_text = table.to_csv()
        header, line = csv_text.strip().splitlines()
        values = dict(zip(header.split(","), line.split(",")))
        assert float(values["energy_kwh"]) == table.rows[0].energy_kwh
        assert values["controller"] == "neat"

    def test_table_render_mentions_all_cells(self):
        table = SweepTable(rows=[
            SweepRow(controller="drowsy", n_vms=8, n_hosts=2, seed=1,
                     hours=4, energy_kwh=1.5, slatah=0.0, esv=0.0,
                     migrations=0, suspend_cycles=2,
                     suspended_fraction=0.25)])
        text = table.render()
        assert "drowsy" in text and "25.0%" in text


class TestPersistence:
    """save/load round-trips (DESIGN.md §9): CSV default, SQLite via
    stdlib, parquet gated on pyarrow."""

    @staticmethod
    def _table():
        cells = grid(controllers=("drowsy", "neat"), sizes=(8,),
                     seeds=(1, 2), hours=4)
        return SweepRunner(workers=1).run(cells)

    def test_csv_round_trip(self, tmp_path):
        table = self._table()
        path = tmp_path / "t.csv"
        table.save(path)
        assert SweepTable.load(path).rows == table.rows

    def test_sqlite_round_trip(self, tmp_path):
        table = self._table()
        path = tmp_path / "t.sqlite"
        table.save(path)
        loaded = SweepTable.load(path)
        assert loaded.rows == table.rows  # floats exact: REAL is binary

    def test_sqlite_appends_distinguishable_runs(self, tmp_path):
        """Longitudinal: each save appends under its own run id; load
        returns the latest run, and earlier runs stay addressable."""
        path = tmp_path / "t.sqlite"
        first = self._table()
        second = SweepTable(rows=first.rows[:2])
        assert first.to_sqlite(path) == 0
        assert second.to_sqlite(path) == 1
        assert SweepTable.load(path).rows == second.rows  # latest run
        assert SweepTable.from_sqlite(path, run=0).rows == first.rows

    def test_check_writable_fails_fast(self, tmp_path):
        with pytest.raises(ValueError):
            SweepTable.check_writable(tmp_path / "t.xlsx")
        SweepTable.check_writable(tmp_path / "t.sqlite")  # no file written
        assert not (tmp_path / "t.sqlite").exists()

    def test_parquet_round_trip(self, tmp_path):
        pytest.importorskip("pyarrow")
        table = self._table()
        path = tmp_path / "t.parquet"
        table.save(path)
        assert SweepTable.load(path).rows == table.rows

    def test_unknown_suffix_rejected(self, tmp_path):
        table = self._table()
        with pytest.raises(ValueError):
            table.save(tmp_path / "t.xlsx")
        with pytest.raises(ValueError):
            SweepTable.load(tmp_path / "t.xlsx")


class TestCrossProcessDeterminism:
    """Stable digests instead of the salted builtin hash()."""

    @staticmethod
    def _addresses(hash_seed):
        code = (
            "from repro.cluster.host import Host\n"
            "from repro.cluster.vm import VM\n"
            "from repro.traces.synthetic import daily_backup_trace\n"
            "print(Host('P2').mac_address,"
            " VM('V1', daily_backup_trace(days=1)).ip_address)\n")
        env = dict(os.environ, PYTHONHASHSEED=hash_seed, PYTHONPATH=SRC)
        out = subprocess.run([sys.executable, "-c", code], env=env,
                             capture_output=True, text=True, check=True)
        return out.stdout.strip()

    def test_mac_and_ip_stable_across_hash_seeds(self):
        assert self._addresses("1") == self._addresses("424242")

    def test_mac_format(self):
        from repro.cluster.host import Host

        mac = Host("P2").mac_address
        parts = mac.split(":")
        assert len(parts) == 6 and parts[:3] == ["52", "54", "00"]
        assert all(len(p) == 2 for p in parts)
        assert Host("P2").mac_address == mac  # same name, same MAC
        assert Host("P3").mac_address != mac


class TestExperimentWiring:
    def test_fleet_sweep_workers_identical(self):
        kwargs = dict(llmi_fractions=(0.0, 1.0), n_hosts=2, n_vms=6,
                      days=1)
        serial = fleet_sweep.run(workers=1, **kwargs)
        sharded = fleet_sweep.run(workers=2, **kwargs)
        assert serial.points == sharded.points
        assert serial.render() == sharded.render()

    def test_fleet_sweep_seed_sharding_identical(self):
        """Seed-granularity E8 cells: sharded == serial byte for byte,
        and the single-seed default equals the legacy behaviour."""
        kwargs = dict(llmi_fractions=(0.0, 1.0), n_hosts=2, n_vms=6,
                      days=1, seeds=(7, 11))
        serial = fleet_sweep.run(workers=1, **kwargs)
        sharded = fleet_sweep.run(workers=3, **kwargs)
        assert serial.points == sharded.points
        assert serial.render() == sharded.render()
        single = fleet_sweep.run(llmi_fractions=(0.0,), n_hosts=2,
                                 n_vms=6, days=1, seeds=(7,))
        legacy = fleet_sweep.run(llmi_fractions=(0.0,), n_hosts=2,
                                 n_vms=6, days=1, seed=7)
        assert single.points == legacy.points

    def test_fleet_sweep_seed_mean(self):
        per_seed = [fleet_sweep.run(llmi_fractions=(1.0,), n_hosts=2,
                                    n_vms=6, days=1, seeds=(s,))
                    for s in (7, 11)]
        mean = fleet_sweep.run(llmi_fractions=(1.0,), n_hosts=2, n_vms=6,
                               days=1, seeds=(7, 11))
        expected = sum(d.points[0].drowsy_kwh for d in per_seed) / 2
        assert mean.points[0].drowsy_kwh == expected

    def test_scalability_workers_smoke(self):
        from repro.experiments import scalability

        data = scalability.run(sizes=(8, 16), repeats=1, workers=2)
        assert len(data.drowsy_s) == len(data.pairwise_s) == 2
        assert all(t > 0 for t in data.drowsy_s + data.pairwise_s)


class TestSweepCLI:
    def test_sweep_subcommand(self, capsys, tmp_path):
        csv_path = tmp_path / "sweep.csv"
        rc = cli_main(["sweep", "--controllers", "drowsy", "--sizes", "8",
                       "--seeds", "7", "--hours", "4", "--workers", "1",
                       "--csv", str(csv_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "sweep results" in out and "drowsy" in out
        assert csv_path.read_text().startswith("controller,")

    def test_sweep_out_sqlite(self, capsys, tmp_path):
        db_path = tmp_path / "sweep.sqlite"
        rc = cli_main(["sweep", "--controllers", "drowsy", "--sizes", "8",
                       "--seeds", "7", "--hours", "4",
                       "--out", str(db_path)])
        assert rc == 0
        assert "written to" in capsys.readouterr().out
        loaded = SweepTable.load(db_path)
        assert len(loaded.rows) == 1 and loaded.rows[0].controller == "drowsy"

    def test_sweep_rejects_unknown_controller(self):
        with pytest.raises(SystemExit):
            cli_main(["sweep", "--controllers", "nope"])

    def test_controller_names_exported(self):
        assert set(CONTROLLER_NAMES) == {
            "drowsy", "neat", "neat-distributed", "oasis"}
