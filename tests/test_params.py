"""Tests for DrowsyParams and the paper constants."""


import pytest

from repro.core.params import (
    DEFAULT_PARAMS,
    GRACE_MAX_S,
    GRACE_MIN_S,
    HOURS_PER_YEAR,
    IP_RANGE_THRESHOLD,
    SIGMA,
    u_coefficient,
)


class TestPaperConstants:
    def test_sigma_definition(self):
        """Eq. (3): sigma = 1 / (365 * 24)."""
        assert SIGMA == pytest.approx(1.0 / 8760.0)
        assert HOURS_PER_YEAR == 8760

    def test_ip_range_threshold_is_seven_sigma(self):
        """Section III-D: 'We empirically set the threshold ... to 7σ'."""
        assert IP_RANGE_THRESHOLD == pytest.approx(7.0 * SIGMA)

    def test_grace_bounds(self):
        """Section IV: between 5 s and 2 min."""
        assert GRACE_MIN_S == 5.0
        assert GRACE_MAX_S == 120.0

    def test_alpha_beta_defaults(self):
        """Section III-C: alpha = 0.7, beta = 0.5."""
        assert DEFAULT_PARAMS.alpha == 0.7
        assert DEFAULT_PARAMS.beta == 0.5

    def test_power_constants(self):
        """Section VI-A.2: S3 ~ 5 W, about 10 % of idle."""
        assert DEFAULT_PARAMS.suspend_power_w == pytest.approx(
            0.1 * DEFAULT_PARAMS.idle_power_w)

    def test_resume_latencies(self):
        """Section VI-A.3: 1500 ms baseline, 800 ms optimized."""
        from repro.core.params import (
            RESUME_LATENCY_BASELINE_S,
            RESUME_LATENCY_OPTIMIZED_S,
        )

        assert RESUME_LATENCY_BASELINE_S == pytest.approx(1.5)
        assert RESUME_LATENCY_OPTIMIZED_S == pytest.approx(0.8)
        assert DEFAULT_PARAMS.resume_latency_s == RESUME_LATENCY_OPTIMIZED_S


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"sigma": 0.0},
        {"weight_descent_steps": -1},
        {"weight_learning_rate": -0.1},
        {"default_activity": 1.5},
        {"ip_range_threshold": -1.0},
        {"grace_min_s": 0.0},
        {"grace_min_s": 200.0},  # min > max
        {"grace_ip_scale": 0.0},
        {"resume_latency_s": -1.0},
        {"suspend_check_period_s": 0.0},
        {"heartbeat_miss_limit": 0},
        {"suspend_power_w": 60.0},  # above idle
        {"idle_power_w": 200.0},    # above max
    ])
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            DEFAULT_PARAMS.replace(**kwargs)

    def test_replace_preserves_others(self):
        p = DEFAULT_PARAMS.replace(alpha=0.9)
        assert p.alpha == 0.9
        assert p.beta == DEFAULT_PARAMS.beta
        assert DEFAULT_PARAMS.alpha == 0.7  # original untouched

    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_PARAMS.alpha = 0.1  # type: ignore[misc]


class TestUCoefficientShape:
    def test_symmetric_around_beta(self):
        """u(beta - x) + u(beta + x) == 1 for the logistic form."""
        for x in (0.1, 0.2, 0.4):
            assert u_coefficient(0.5 - x) + u_coefficient(0.5 + x) == \
                pytest.approx(1.0)

    def test_custom_alpha_steepens(self):
        gentle = u_coefficient(1.0, alpha=0.1)
        steep = u_coefficient(1.0, alpha=5.0)
        assert steep < gentle

    def test_range(self):
        for si in (0.0, 0.25, 0.5, 0.75, 1.0):
            assert 0.0 < u_coefficient(si) < 1.0
