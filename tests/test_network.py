"""Tests for request generation, SLA accounting and the SDN switch."""

import numpy as np
import pytest

from repro.cluster import DataCenter, EventSimulator, Host, TESTBED_VM, VM
from repro.network import Request, RequestLog, RequestProfile, SDNSwitch, poisson_arrivals
from repro.traces.synthetic import always_idle_trace
from repro.waking import WakingModule
from repro.waking.packets import WoLPacket


class TestPoissonArrivals:
    def test_zero_rate_empty(self):
        rng = np.random.default_rng(0)
        assert poisson_arrivals(rng, 0.0, 100.0, 0.0).size == 0

    def test_arrivals_within_window(self):
        rng = np.random.default_rng(0)
        a = poisson_arrivals(rng, 50.0, 100.0, 0.5)
        assert np.all(a >= 50.0) and np.all(a < 150.0)
        assert np.all(np.diff(a) >= 0)

    def test_rate_controls_count(self):
        rng = np.random.default_rng(0)
        low = poisson_arrivals(rng, 0, 10000, 0.01).size
        high = poisson_arrivals(rng, 0, 10000, 0.1).size
        assert high > low


class TestRequestProfile:
    def test_idle_hour_no_requests(self):
        profile = RequestProfile()
        rng = np.random.default_rng(0)
        assert profile.hourly_arrivals(rng, 0.0, 0.0).size == 0

    def test_leading_request_present(self):
        profile = RequestProfile(peak_rate_per_s=0.0001, leading_request=True)
        rng = np.random.default_rng(0)
        arrivals = profile.hourly_arrivals(rng, 3600.0, 0.5)
        assert arrivals.size >= 1
        assert arrivals[0] <= 3602.0

    def test_service_time_positive(self):
        profile = RequestProfile()
        rng = np.random.default_rng(0)
        for _ in range(100):
            assert profile.sample_service_time(rng) > 0


class TestRequestLog:
    def make_request(self, latency, woke=False):
        r = Request(arrival_s=0.0, vm_name="v", service_time_s=latency)
        r.completion_s = latency
        r.woke_host = woke
        return r

    def test_sla_fraction(self):
        log = RequestLog()
        for lat in (0.05, 0.1, 0.15, 0.9):
            log.record(self.make_request(lat))
        assert log.sla_fraction(0.2) == pytest.approx(0.75)

    def test_incomplete_request_rejected(self):
        log = RequestLog()
        with pytest.raises(ValueError):
            log.record(Request(arrival_s=0.0, vm_name="v", service_time_s=0.1))

    def test_wake_requests_tracked(self):
        log = RequestLog()
        log.record(self.make_request(0.9, woke=True))
        log.record(self.make_request(0.1))
        assert len(log.wake_requests) == 1
        assert log.max_wake_latency() == pytest.approx(0.9)

    def test_empty_log_nan(self):
        log = RequestLog()
        assert np.isnan(log.sla_fraction())
        assert np.isnan(log.percentile(99))
        assert log.max_wake_latency() == 0.0

    def test_summary_keys(self):
        log = RequestLog()
        log.record(self.make_request(0.1))
        s = log.summary()
        assert {"requests", "sla_fraction", "p99_s", "wake_requests"} <= set(s)


class TestSDNSwitch:
    def make_stack(self):
        sim = EventSimulator()
        host = Host("h1")
        vm = VM("v1", always_idle_trace(48), TESTBED_VM, ip_address="10.2.0.1")
        host.add_vm(vm)
        dc = DataCenter([host])
        switch = SDNSwitch(sim, dc)
        wols = []
        module = WakingModule("wm", sim, lambda p, t: wols.append((p, t)))
        switch.waking_service = module
        switch.wol_sender = lambda p, t: wols.append((p, t))
        return sim, dc, switch, module, host, vm, wols

    def submit(self, sim, switch, vm, at=0.0, service=0.05):
        req = Request(arrival_s=at, vm_name=vm.name, service_time_s=service)
        sim.schedule_at(at, switch.submit_request, req)
        return req

    def test_request_to_on_host_completes(self):
        sim, dc, switch, module, host, vm, wols = self.make_stack()
        req = self.submit(sim, switch, vm, at=1.0, service=0.05)
        sim.run()
        assert req.completed
        assert req.latency_s == pytest.approx(0.05)
        assert not req.woke_host

    def test_request_to_suspended_host_queues_until_resume(self):
        sim, dc, switch, module, host, vm, wols = self.make_stack()
        host.begin_suspend(0.0)
        host.finish_suspend(0.5)
        module.register_suspension(host, None)
        req = self.submit(sim, switch, vm, at=10.0, service=0.05)
        sim.run_until(10.1)
        assert switch.queued_requests == 1
        assert len(wols) == 1  # analyzer sent the WoL
        # Simulate resume completing at 10.8.
        host.begin_resume(10.2)
        host.finish_resume(10.8, 0.0)
        sim.schedule_at(10.8, switch.on_host_available, host)
        sim.run()
        assert req.completed
        assert req.woke_host
        assert req.latency_s == pytest.approx(0.85)

    def test_fallback_wol_when_unmapped(self):
        """A VM missing from the waking map still wakes its host via the
        switch-port fallback."""
        sim, dc, switch, module, host, vm, wols = self.make_stack()
        host.begin_suspend(0.0)
        host.finish_suspend(0.5)
        # No register_suspension: the analyzer knows nothing.
        self.submit(sim, switch, vm, at=5.0)
        sim.run_until(5.1)
        assert len(wols) == 1
        assert isinstance(wols[0][0], WoLPacket)

    def test_unknown_vm_rejected(self):
        sim, dc, switch, module, host, vm, wols = self.make_stack()
        req = Request(arrival_s=0.0, vm_name="ghost", service_time_s=0.1)
        with pytest.raises(KeyError):
            switch.submit_request(req)


class TestBatchedRedispatch:
    """Resume redispatch: one scheduling pass, one WoL per drowsy host."""

    def make_rack(self, n_vms=2):
        sim = EventSimulator()
        host = Host("h1")
        vms = []
        for i in range(n_vms):
            vm = VM(f"v{i}", always_idle_trace(48), TESTBED_VM,
                    ip_address=f"10.3.0.{i + 1}")
            host.add_vm(vm)
            vms.append(vm)
        dc = DataCenter([host])
        switch = SDNSwitch(sim, dc)
        wols = []
        # A passive WoL sink (no synchronous resume): models delayed
        # WoL delivery, where the old code sent one packet per waiting
        # request on every redispatch pass.
        switch.wol_sender = lambda p, t: wols.append(p)
        return sim, dc, switch, host, vms, wols

    def test_one_wol_per_drowsy_host_per_pass(self):
        sim, dc, switch, host, vms, wols = self.make_rack()
        host.begin_suspend(0.0)
        host.finish_suspend(0.5)
        for i, vm in enumerate(vms):
            req = Request(arrival_s=1.0 + i, vm_name=vm.name,
                          service_time_s=0.05)
            sim.schedule_at(req.arrival_s, switch.submit_request, req)
        sim.run_until(4.0)
        assert switch.queued_requests == len(vms)
        wols.clear()
        switch.redispatch_pending()
        assert len(wols) == 1  # was len(vms) before the batched pass
        assert wols[0].mac_address == host.mac_address
        assert switch.queued_requests == len(vms)

    def test_redispatch_completes_after_resume(self):
        sim, dc, switch, host, vms, wols = self.make_rack(n_vms=2)
        host.begin_suspend(0.0)
        host.finish_suspend(0.5)
        for vm in vms:
            req = Request(arrival_s=1.0, vm_name=vm.name, service_time_s=0.05)
            sim.schedule_at(1.0, switch.submit_request, req)
        sim.run_until(2.0)
        host.begin_resume(2.0)
        host.finish_resume(2.8, 0.0)
        switch.redispatch_pending()
        sim.run()
        assert switch.queued_requests == 0
        assert len(switch.log.requests) == 2

    def test_drop_vm_forgets_pending(self):
        sim, dc, switch, host, vms, wols = self.make_rack(n_vms=2)
        host.begin_suspend(0.0)
        host.finish_suspend(0.5)
        for vm in vms:
            req = Request(arrival_s=1.0, vm_name=vm.name, service_time_s=0.05)
            sim.schedule_at(1.0, switch.submit_request, req)
        sim.run_until(2.0)
        switch.drop_vm(vms[0].name)
        assert switch.queued_requests == 1
        dc.remove(vms[0], 2.0)
        switch.redispatch_pending()  # must not fault on the removed VM
        assert switch.queued_requests == 1
