"""Rendering and data-contract tests for the experiment drivers.

Every driver's result object must render a human-readable summary that
names the artifact it reproduces, and expose the fields the benches and
EXPERIMENTS.md rely on.  These run at minimal scales.
"""

import pytest


class TestRenderContracts:
    def test_fig1(self):
        from repro.experiments import fig1_traces

        data = fig1_traces.run(days=2)
        text = data.render()
        assert "Fig. 1" in text
        assert data.daily_peaks("VM3").shape == (2,)

    def test_fig2(self):
        from repro.experiments import fig2_colocation

        data = fig2_colocation.run(days=2)
        assert "Fig. 2" in data.render()
        assert 0.0 <= data.summary.llmu_pair_fraction <= 1.0

    def test_table1(self):
        from repro.experiments import table1_suspension

        data = table1_suspension.run(days=2)
        text = data.render()
        assert "Table I" in text and "Drowsy-DC" in text and "Neat" in text

    def test_energy(self):
        from repro.experiments import energy_totals

        data = energy_totals.run(days=2)
        text = data.render()
        assert "kWh" in text and "saved" in text

    def test_suspending_eval_render(self):
        from repro.experiments import suspending_eval

        data = suspending_eval.run()
        text = data.render()
        for needle in ("precision", "oscillation", "waking date", "us"):
            assert needle in text

    def test_scalability_render(self):
        from repro.experiments import scalability

        data = scalability.run(sizes=(32, 64), repeats=1)
        text = data.render()
        assert "n^" in text
        assert len(data.drowsy_s) == 2

    def test_detector_study_render(self):
        from repro.experiments import detector_study

        data = detector_study.run(n_hosts=3, n_vms=9, days=1)
        assert "SLATAH" in data.render()

    def test_fleet_sweep_point_properties(self):
        from repro.experiments.fleet_sweep import SweepPoint

        p = SweepPoint(llmi_fraction=0.5, drowsy_kwh=10.0, neat_kwh=20.0,
                       neat_no_s3_kwh=40.0, oasis_kwh=15.0)
        assert p.drowsy_vs_neat_pct == pytest.approx(50.0)
        assert p.drowsy_vs_neat_no_s3_pct == pytest.approx(75.0)
        assert p.drowsy_vs_oasis_pct == pytest.approx(100.0 / 3.0)

    def test_backup_render_flags(self):
        from repro.experiments.backup_anticipation import BackupData

        good = BackupData(margins_s=[0.2, 0.3], suspended_fraction=0.9,
                          ahead_of_time=True)
        bad = BackupData(margins_s=[-0.8], suspended_fraction=0.9,
                         ahead_of_time=False)
        assert good.all_anticipated and not bad.all_anticipated
        assert "YES" in good.render() and "NO" in bad.render()

    def test_waking_failover_render(self):
        from repro.analysis.sla import SLAReport
        from repro.experiments.waking_failover import FailoverData

        sla = SLAReport(total_requests=100, sla_fraction=0.995, p50_s=0.05,
                        p99_s=0.1, max_s=0.9, wake_requests=1,
                        max_wake_latency_s=0.9)
        data = FailoverData(failovers=1, detection_delay_s=3.0,
                            wol_after_crash=2, resumes_after_crash=2, sla=sla)
        assert data.service_continued
        assert "failure injection" in data.render()

    def test_initial_placement_render(self):
        from repro.experiments.initial_placement import (
            InitialPlacementData,
            PlacementRunResult,
        )

        d = PlacementRunResult("idleness weigher", 10.0, 5, 0, 1)
        v = PlacementRunResult("vanilla", 12.0, 5, 0, 3)
        data = InitialPlacementData(drowsy=d, vanilla=v)
        assert data.disturbance_reduction == 2
        assert "weigher" in data.render()


class TestCLIQuickPaths:
    def test_run_with_kwargs(self, capsys):
        from repro.cli import main

        assert main(["run", "suspending_eval"]) == 0
        assert "suspending module" in capsys.readouterr().out

    def test_report_exit_code(self, capsys):
        from repro.cli import main

        code = main(["report", "--days", "2", "--years", "1"])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "claims hold" in out
