"""Tests for the extension modules: adaptive alpha/beta, persistence,
idleness heuristics, rack sharding, plotting, CLI."""


import numpy as np
import pytest

from repro.cluster import EventSimulator, Host, TESTBED_VM, VM
from repro.core import (
    AdaptiveBands,
    AdaptiveIdlenessModel,
    FleetIdlenessModel,
    IdlenessModel,
    load_fleet,
    load_model,
    model_from_bytes,
    model_to_bytes,
    save_fleet,
    save_model,
)
from repro.core.params import DEFAULT_PARAMS
from repro.suspend import (
    CombinedHeuristic,
    DirtyRateHeuristic,
    ResourceFractionHeuristic,
    SuspendDecision,
    SuspendingModule,
)
from repro.traces.synthetic import always_idle_trace
from repro.waking import Packet, RackShardedWakingService


class TestAdaptiveModel:
    def test_stable_activity_keeps_low_cv(self):
        m = AdaptiveIdlenessModel()
        for h in range(200):
            m.observe(h, 0.3)
        assert m.coefficient_of_variation < 0.1
        # Stable behaviour -> gentle alpha, high beta.
        assert m.effective_alpha < DEFAULT_PARAMS.alpha
        assert m.effective_beta > DEFAULT_PARAMS.beta

    def test_volatile_activity_raises_alpha(self):
        rng = np.random.default_rng(0)
        m = AdaptiveIdlenessModel()
        for h in range(400):
            m.observe(h, float(rng.choice([0.02, 0.9])))
        assert m.coefficient_of_variation > 0.5
        assert m.effective_alpha > DEFAULT_PARAMS.alpha
        assert m.effective_beta < DEFAULT_PARAMS.beta

    def test_bands_derive_edges(self):
        bands = AdaptiveBands()
        a_lo, b_hi = bands.derive(0.0)
        a_hi, b_lo = bands.derive(10.0)
        assert a_lo == bands.alpha_min and b_hi == bands.beta_max
        assert a_hi == bands.alpha_max and b_lo == bands.beta_min

    def test_still_learns_patterns(self):
        from repro.core.calendar import slot_of_hour

        m = AdaptiveIdlenessModel()
        for h in range(30 * 24):
            m.observe(h, 0.4 if h % 24 == 9 else 0.0)
        assert not m.predict_idle(slot_of_hour(30 * 24 + 9))
        assert m.predict_idle(slot_of_hour(30 * 24 + 3))

    def test_cold_start_cv_zero(self):
        assert AdaptiveIdlenessModel().coefficient_of_variation == 0.0


class TestSerialization:
    def train(self, model, hours=300):
        for h in range(hours):
            model.observe(h, 0.3 if h % 24 < 8 else 0.0)
        return model

    def test_scalar_roundtrip(self, tmp_path):
        model = self.train(IdlenessModel())
        path = tmp_path / "model.npz"
        save_model(model, path)
        restored = load_model(path)
        np.testing.assert_array_equal(restored.sid, model.sid)
        np.testing.assert_array_equal(restored.siy, model.siy)
        np.testing.assert_array_equal(restored.weights, model.weights)
        assert restored.hours_observed == model.hours_observed
        assert restored.mean_active_activity == model.mean_active_activity

    def test_restored_model_continues_identically(self, tmp_path):
        model = self.train(IdlenessModel())
        path = tmp_path / "model.npz"
        save_model(model, path)
        restored = load_model(path)
        for h in range(300, 350):
            a = 0.3 if h % 24 < 8 else 0.0
            model.observe(h, a)
            restored.observe(h, a)
        np.testing.assert_array_equal(restored.sid, model.sid)
        np.testing.assert_array_equal(restored.weights, model.weights)

    def test_fleet_roundtrip(self, tmp_path):
        fleet = FleetIdlenessModel(3)
        A = np.where(np.random.default_rng(0).random((3, 200)) < 0.6, 0.0, 0.4)
        fleet.run_trace_matrix(A)
        path = tmp_path / "fleet.npz"
        save_fleet(fleet, path)
        restored = load_fleet(path)
        assert restored.n == 3
        np.testing.assert_array_equal(restored.siw, fleet.siw)
        np.testing.assert_array_equal(restored._active_hours, fleet._active_hours)

    def test_kind_mismatch_rejected(self, tmp_path):
        model = self.train(IdlenessModel())
        path = tmp_path / "model.npz"
        save_model(model, path)
        with pytest.raises(ValueError):
            load_fleet(path)

    def test_bytes_roundtrip(self):
        model = self.train(IdlenessModel())
        blob = model_to_bytes(model)
        restored = model_from_bytes(blob)
        np.testing.assert_array_equal(restored.sid, model.sid)


class TestHeuristics:
    def make_host(self, activity):
        host = Host("h")
        vm = VM("v", always_idle_trace(48), TESTBED_VM)
        vm.current_activity = activity
        host.add_vm(vm)
        return host, vm

    def test_dirty_rate_veto(self):
        host, vm = self.make_host(0.0)
        h = DirtyRateHeuristic(threshold=0.01)
        assert h.host_seems_idle(host)
        vm.current_activity = 0.2  # dirty rate follows activity
        assert not h.host_seems_idle(host)

    def test_resource_fraction(self):
        host, vm = self.make_host(0.0)
        assert ResourceFractionHeuristic().host_seems_idle(host)
        vm.current_activity = 0.9
        assert not ResourceFractionHeuristic().host_seems_idle(host)

    def test_combined_all_must_agree(self):
        host, vm = self.make_host(0.0)
        combined = CombinedHeuristic((DirtyRateHeuristic(),
                                      ResourceFractionHeuristic()))
        assert combined.host_seems_idle(host)
        vm.current_activity = 0.5
        assert not combined.host_seems_idle(host)

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            DirtyRateHeuristic(threshold=2.0)
        with pytest.raises(ValueError):
            ResourceFractionHeuristic(cpu_threshold=-0.1)

    def test_module_integration(self):
        """A dirty-but-process-idle VM triggers the heuristic veto."""

        class AlwaysDirty:
            def host_seems_idle(self, host):
                return False

        host, vm = self.make_host(0.0)
        module = SuspendingModule(host, heuristic=AlwaysDirty())
        verdict = module.evaluate(now=10.0)
        assert verdict.decision is SuspendDecision.HEURISTIC_VETO

    def test_module_without_heuristic_unchanged(self):
        host, vm = self.make_host(0.0)
        module = SuspendingModule(host)
        assert module.evaluate(now=10.0).should_suspend


class TestRackSharding:
    def make_service(self, n_racks=2, hosts_per_rack=2):
        sim = EventSimulator()
        wols = []
        hosts = []
        rack_of_host = {}
        for r in range(n_racks):
            for i in range(hosts_per_rack):
                host = Host(f"r{r}h{i}")
                vm = VM(f"vm-r{r}h{i}", always_idle_trace(48), TESTBED_VM,
                        ip_address=f"10.{r}.{i}.1")
                host.add_vm(vm)
                hosts.append(host)
                rack_of_host[host.name] = f"rack{r}"
        service = RackShardedWakingService(
            sim, lambda p, t: wols.append(p), rack_of_host)
        return sim, service, hosts, wols

    def test_routing_to_owning_shard(self):
        sim, service, hosts, wols = self.make_service()
        service.register_suspension(hosts[0], None)
        shard0 = service.shards["rack0"]
        shard1 = service.shards["rack1"]
        assert shard0.active.state.vm_to_mac
        assert not shard1.active.state.vm_to_mac

    def test_packet_routed_and_wakes(self):
        sim, service, hosts, wols = self.make_service()
        service.register_suspension(hosts[3], None)
        vm_ip = hosts[3].vms[0].ip_address
        assert service.analyze_packet(Packet(dst_ip=vm_ip))
        assert len(wols) == 1
        assert wols[0].mac_address == hosts[3].mac_address

    def test_unknown_destination(self):
        sim, service, hosts, wols = self.make_service()
        assert not service.analyze_packet(Packet(dst_ip="1.2.3.4"))

    def test_shard_failover_isolated(self):
        sim, service, hosts, wols = self.make_service()
        service.register_suspension(hosts[0], waking_date_s=500.0)
        service.fail_rack_primary("rack0")
        sim.run_until(600.0)
        # The rack0 mirror still delivered the scheduled wake.
        assert any(w.mac_address == hosts[0].mac_address for w in wols)
        # rack1 untouched.
        assert service.shards["rack1"].active is service.shards["rack1"].primary

    def test_unassigned_host_rejected(self):
        sim, service, hosts, wols = self.make_service()
        stray = Host("stray")
        with pytest.raises(KeyError):
            service.register_suspension(stray, None)

    def test_requires_assignments(self):
        with pytest.raises(ValueError):
            RackShardedWakingService(EventSimulator(), lambda p, t: None, {})


class TestPlotting:
    def test_sparkline_range(self):
        from repro.analysis import sparkline

        line = sparkline([0.0, 0.5, 1.0])
        assert len(line) == 3
        assert line[0] == " " and line[-1] == "@"

    def test_sparkline_skips_nan(self):
        from repro.analysis import sparkline

        assert sparkline([float("nan")] * 5) == "(no defined values)"

    def test_ascii_chart_shape(self):
        from repro.analysis import ascii_chart

        chart = ascii_chart(np.linspace(0, 1, 30), width=30, height=5)
        lines = chart.splitlines()
        assert len(lines) == 6
        assert "*" in chart

    def test_compare_table(self):
        from repro.analysis import compare_table

        text = compare_table({"a": {"x": 1.0, "y": float("nan")},
                              "b": {"x": 2.0, "y": 3.0}})
        assert "a" in text and "x" in text and "-" in text
        assert compare_table({}) == "(empty)"


class TestCLI:
    def test_list(self, capsys):
        from repro.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig2_colocation" in out

    def test_run_small(self, capsys):
        from repro.cli import main

        assert main(["run", "fig1_traces", "--days", "3"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 1" in out and "finished in" in out

    def test_unknown_experiment(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["run", "nope"])
