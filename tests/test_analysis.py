"""Tests for the analysis helpers (colocation, energy, SLA, evaluation)."""

import numpy as np
import pytest

from repro.analysis import (
    ColocationTracker,
    RunSummary,
    energy_table,
    evaluate_traces,
    evaluation_table,
    improvement_pct,
    sla_report,
    summarize_testbed,
    suspension_table,
)
from repro.cluster import DataCenter, Host, HostCapacity, ResourceSpec, VM
from repro.network.requests import Request, RequestLog
from repro.traces.synthetic import always_idle_trace, daily_backup_trace, llmu_trace

CAP = HostCapacity(cpus=8, memory_mb=16384, cpu_overcommit=1.0)
FLAVOR = ResourceSpec(cpus=2, memory_mb=6144)


def make_dc():
    hosts = [Host("h0", CAP), Host("h1", CAP)]
    dc = DataCenter(hosts)
    for i, hname in enumerate(("h0", "h0", "h1", "h1")):
        dc.place(VM(f"V{i}", always_idle_trace(48), FLAVOR), dc.host(hname))
    return dc


class TestColocation:
    def test_pair_fraction(self):
        dc = make_dc()
        tracker = ColocationTracker(dc)
        tracker.sample()
        tracker.sample()
        assert tracker.pair_fraction("V0", "V1") == 1.0
        assert tracker.pair_fraction("V0", "V2") == 0.0
        assert tracker.pair_fraction("V0", "V0") == 1.0

    def test_fraction_after_migration(self):
        dc = make_dc()
        tracker = ColocationTracker(dc)
        tracker.sample()
        v0 = next(v for v in dc.vms if v.name == "V0")
        v2 = next(v for v in dc.vms if v.name == "V2")
        dc.apply_assignment({"V0": dc.host("h1"), "V2": dc.host("h0")}, now=1.0)
        tracker.sample()
        assert tracker.pair_fraction("V0", "V3") == 0.5

    def test_matrix_layout(self):
        dc = make_dc()
        tracker = ColocationTracker(dc)
        tracker.sample()
        m = tracker.matrix(["V0", "V1", "V2", "V3"])
        assert m.shape == (4, 4)
        np.testing.assert_allclose(np.diag(m), 100.0)
        np.testing.assert_allclose(m, m.T)

    def test_no_samples(self):
        dc = make_dc()
        tracker = ColocationTracker(dc)
        assert tracker.pair_fraction("V0", "V1") == 0.0

    def test_render_includes_migrations(self):
        dc = make_dc()
        tracker = ColocationTracker(dc)
        tracker.sample()
        text = tracker.render(["V0", "V1"], {"V0": 2, "V1": 0})
        assert "#mig" in text and "V0" in text

    def test_summarize_testbed(self):
        dc = make_dc()
        tracker = ColocationTracker(dc)
        tracker.sample()
        s = summarize_testbed(tracker, {"V0": 1, "V1": 0},
                              llmu_pair=("V0", "V1"),
                              same_workload_pair=("V2", "V3"))
        assert s.llmu_pair_fraction == 1.0
        assert s.same_workload_pair_fraction == 1.0
        assert s.total_migrations == 1


class TestEnergyTables:
    def test_improvement_pct(self):
        assert improvement_pct(40.0, 18.0) == pytest.approx(55.0)
        with pytest.raises(ValueError):
            improvement_pct(0.0, 1.0)

    def test_suspension_table_format(self):
        runs = [RunSummary("Drowsy-DC", 18.0, {"P2": 0.0, "P3": 0.94}),
                RunSummary("Neat", 24.0, {"P2": 0.89, "P3": 0.07})]
        text = suspension_table(runs, ["P2", "P3"])
        assert "Drowsy-DC" in text and "Global" in text

    def test_energy_table_savings_column(self):
        runs = [RunSummary("base", 40.0, {}), RunSummary("new", 20.0, {})]
        text = energy_table(runs)
        assert "50.0%" in text

    def test_global_fraction(self):
        r = RunSummary("x", 1.0, {"a": 0.5, "b": 1.0})
        assert r.global_suspended_fraction == pytest.approx(0.75)
        assert RunSummary("y", 1.0, {}).global_suspended_fraction == 0.0


class TestSLAReport:
    def make_log(self):
        log = RequestLog()
        for lat, woke in [(0.05, False)] * 99 + [(0.8, True)]:
            r = Request(arrival_s=0.0, vm_name="v", service_time_s=lat)
            r.completion_s = lat
            r.woke_host = woke
            log.record(r)
        return log

    def test_report_fields(self):
        report = sla_report(self.make_log())
        assert report.total_requests == 100
        assert report.sla_fraction == pytest.approx(0.99)
        assert not report.sla_met  # needs strictly more than 99 %
        assert report.wake_requests == 1
        assert report.max_wake_latency_s == pytest.approx(0.8)

    def test_render(self):
        text = sla_report(self.make_log()).render()
        assert "requests" in text and "SLA" in text


class TestEvaluationHarness:
    def test_fleet_evaluation_matches_trace_count(self):
        traces = [daily_backup_trace(days=30), llmu_trace(hours=30 * 24)]
        evals = evaluate_traces(traces, sample_every=24)
        assert len(evals) == 2
        assert evals[0].trace_name == "daily-backup"

    def test_backup_learns_fast(self):
        traces = [daily_backup_trace(days=60)]
        ev = evaluate_traces(traces)[0]
        assert ev.final_f_measure > 0.95

    def test_llmu_specificity(self):
        ev = evaluate_traces([llmu_trace(hours=30 * 24)])[0]
        assert ev.final_specificity > 0.99

    def test_table_rendering(self):
        evals = evaluate_traces([daily_backup_trace(days=14)])
        text = evaluation_table(evals)
        assert "f-measure" in text and "daily-backup" in text

    def test_requires_traces(self):
        with pytest.raises(ValueError):
            evaluate_traces([])

    def test_shorter_traces_extend_periodically(self):
        traces = [daily_backup_trace(days=7), daily_backup_trace(days=14)]
        evals = evaluate_traces(traces)
        assert evals[0].curves.hours[-1] == evals[1].curves.hours[-1]
