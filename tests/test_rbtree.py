"""Tests for the red-black tree (kernel hrtimer structure)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.suspend.rbtree import RedBlackTree


class TestBasics:
    def test_empty(self):
        t = RedBlackTree()
        assert len(t) == 0
        assert not t
        with pytest.raises(KeyError):
            t.min_item()
        with pytest.raises(KeyError):
            t.pop_min()

    def test_insert_and_min(self):
        t = RedBlackTree()
        t.insert(5.0, "five")
        t.insert(3.0, "three")
        t.insert(7.0, "seven")
        assert len(t) == 3
        assert t.min_item() == (3.0, "three")

    def test_duplicate_keys_allowed(self):
        t = RedBlackTree()
        t.insert(1.0, "a")
        t.insert(1.0, "b")
        assert len(t) == 2
        keys = [k for k, _ in t.items()]
        assert keys == [1.0, 1.0]

    def test_pop_min_drains_sorted(self):
        t = RedBlackTree()
        for k in (9, 1, 5, 3, 7):
            t.insert(float(k), k)
        drained = [t.pop_min()[0] for _ in range(5)]
        assert drained == [1.0, 3.0, 5.0, 7.0, 9.0]
        assert len(t) == 0

    def test_remove_by_handle(self):
        t = RedBlackTree()
        h = t.insert(2.0, "x")
        t.insert(1.0, "y")
        t.remove_node(h)
        assert [v for _, v in t.items()] == ["y"]

    def test_items_in_order(self):
        t = RedBlackTree()
        for k in (4, 2, 8, 6, 0):
            t.insert(float(k), None)
        assert [k for k, _ in t.items()] == [0.0, 2.0, 4.0, 6.0, 8.0]


class TestInvariants:
    def test_validate_after_ascending_inserts(self):
        t = RedBlackTree()
        for k in range(200):
            t.insert(float(k), k)
        t.validate()

    def test_validate_after_descending_inserts(self):
        t = RedBlackTree()
        for k in reversed(range(200)):
            t.insert(float(k), k)
        t.validate()

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.floats(min_value=0, max_value=1e9), max_size=150))
    def test_sorted_iteration_matches_sorted_list(self, keys):
        t = RedBlackTree()
        for k in keys:
            t.insert(k, None)
        assert [k for k, _ in t.items()] == sorted(keys)
        t.validate()

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(st.floats(min_value=0, max_value=1e6),
                              st.booleans()), max_size=120))
    def test_mixed_inserts_and_deletes(self, spec):
        """Reference-model test: tree behaves like a sorted multiset."""
        t = RedBlackTree()
        handles = []
        reference = []
        for key, delete_one in spec:
            handles.append((key, t.insert(key, key)))
            reference.append(key)
            if delete_one and handles:
                k, h = handles.pop(len(handles) // 2)
                t.remove_node(h)
                reference.remove(k)
        assert [k for k, _ in t.items()] == sorted(reference)
        t.validate()

    def test_heavy_randomized_churn(self):
        rng = np.random.default_rng(7)
        t = RedBlackTree()
        live = []
        for step in range(2000):
            if live and rng.random() < 0.4:
                idx = int(rng.integers(len(live)))
                _, h = live.pop(idx)
                t.remove_node(h)
            else:
                k = float(rng.uniform(0, 1e6))
                live.append((k, t.insert(k, None)))
            if step % 500 == 0:
                t.validate()
        t.validate()
        assert len(t) == len(live)
        assert [k for k, _ in t.items()] == sorted(k for k, _ in live)
