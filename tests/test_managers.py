"""Tests for the distributed Neat architecture (local/global managers)."""


from repro.cluster import DataCenter, Host, HostCapacity, ResourceSpec, VM
from repro.consolidation.managers import (
    DistributedNeat,
    GlobalManager,
    HostStatus,
    LocalManager,
    LocalManagerReport,
)
from repro.sim.hourly import HourlyConfig, HourlySimulator
from repro.traces.synthetic import always_idle_trace, llmu_trace

CAP = HostCapacity(cpus=8, memory_mb=16384, cpu_overcommit=2.0)
FLAVOR = ResourceSpec(cpus=2, memory_mb=4096)


def make_vm(name, activity):
    vm = VM(name, always_idle_trace(24 * 10), FLAVOR)
    vm.current_activity = activity
    return vm


class TestLocalManager:
    def test_normal_report(self):
        host = Host("h", CAP)
        host.add_vm(make_vm("a", 0.5))  # util 1/8 -> normal? 0.5*2/8 = .125
        host.add_vm(make_vm("b", 0.9))  # total util .35
        lm = LocalManager(host, underload_threshold=0.1)
        lm.observe(0)
        report = lm.report(0)
        assert report.status is HostStatus.NORMAL
        assert report.migration_candidates == ()

    def test_underload_offers_everything(self):
        host = Host("h", CAP)
        host.add_vm(make_vm("a", 0.1))
        lm = LocalManager(host, underload_threshold=0.2)
        lm.observe(0)
        report = lm.report(0)
        assert report.status is HostStatus.UNDERLOADED
        assert report.migration_candidates == ("a",)

    def test_overload_selects_subset(self):
        host = Host("h", CAP)
        for i in range(4):
            host.add_vm(make_vm(f"v{i}", 1.0))  # util 8/8
        lm = LocalManager(host)
        lm.observe(0)
        report = lm.report(0)
        assert report.status is HostStatus.OVERLOADED
        assert 0 < len(report.migration_candidates) < 4

    def test_sleeping_host(self):
        host = Host("h", CAP)
        host.add_vm(make_vm("a", 0.0))
        host.begin_suspend(0.0)
        host.finish_suspend(1.0)
        lm = LocalManager(host)
        assert lm.report(0).status is HostStatus.SLEEPING

    def test_empty_host_is_normal(self):
        lm = LocalManager(Host("h", CAP))
        lm.observe(0)
        assert lm.report(0).status is HostStatus.NORMAL


class TestGlobalManager:
    def test_overload_resolution(self):
        h0, h1 = Host("h0", CAP), Host("h1", CAP)
        dc = DataCenter([h0, h1])
        for i in range(4):
            dc.place(make_vm(f"v{i}", 1.0), h0)
        gm = GlobalManager(dc)
        report = LocalManagerReport("h0", HostStatus.OVERLOADED, 1.0, ("v0",))
        moved = gm.step([report], 0, 0.0,
                        lambda vm, dest: dc.migrate(vm, dest, 0.0))
        assert moved == 1
        assert dc.host_of(next(v for v in dc.vms if v.name == "v0")).name == "h1"

    def test_underload_evacuation_with_receiver_guard(self):
        h0, h1 = Host("h0", CAP), Host("h1", CAP)
        dc = DataCenter([h0, h1])
        a = make_vm("a", 0.05)
        b = make_vm("b", 0.10)
        dc.place(a, h0)
        dc.place(b, h1)
        gm = GlobalManager(dc)
        reports = [
            LocalManagerReport("h0", HostStatus.UNDERLOADED, 0.0125, ("a",)),
            LocalManagerReport("h1", HostStatus.UNDERLOADED, 0.025, ("b",)),
        ]
        gm.step(reports, 0, 0.0, lambda vm, dest: dc.migrate(vm, dest, 0.0))
        # Exactly one evacuation: the receiving host is protected.
        assert (len(h0.vms), len(h1.vms)) in ((2, 0), (0, 2))

    def test_reactivates_off_hosts_for_overload(self):
        h0, h1 = Host("h0", CAP), Host("h1", CAP)
        dc = DataCenter([h0, h1])
        for i in range(4):
            dc.place(make_vm(f"v{i}", 1.0), h0)
        h1.power_off(0.0)
        gm = GlobalManager(dc)
        report = LocalManagerReport("h0", HostStatus.OVERLOADED, 1.0,
                                    ("v0", "v1"))
        moved = gm.step([report], 0, 0.0,
                        lambda vm, dest: dc.migrate(vm, dest, 0.0))
        assert moved == 2
        assert len(h1.vms) == 2


class TestDistributedNeat:
    def test_matches_monolithic_on_static_scenario(self):
        """Same inputs, same outcome class: consolidates the small host."""
        def build():
            h0, h1 = Host("h0", CAP), Host("h1", CAP)
            dc = DataCenter([h0, h1])
            dc.place(make_vm("a", 0.3), h0)
            dc.place(make_vm("b", 0.3), h0)
            dc.place(make_vm("c", 0.1), h1)
            return dc

        from repro.consolidation import NeatController

        dc1 = build()
        mono = NeatController(dc1)
        mono.observe_hour(0)
        mono.step(0, 0.0)

        dc2 = build()
        dist = DistributedNeat(dc2)
        dist.observe_hour(0)
        dist.step(0, 0.0)

        empties1 = sorted(h.name for h in dc1.hosts if not h.vms)
        empties2 = sorted(h.name for h in dc2.hosts if not h.vms)
        assert empties1 == empties2 == ["h1"]

    def test_runs_under_hourly_simulator(self):
        hosts = [Host(f"h{i}", CAP) for i in range(3)]
        dc = DataCenter(hosts)
        for i, h in enumerate(hosts):
            dc.place(VM(f"busy{i}", llmu_trace(hours=24 * 5, seed=i), FLAVOR), h)
            dc.place(VM(f"idle{i}", always_idle_trace(24 * 5), FLAVOR), h)
        ctrl = DistributedNeat(dc)
        sim = HourlySimulator(dc, ctrl,
                              config=HourlyConfig(power_off_empty=True))
        result = sim.run(48)
        dc.check_invariants()
        assert result.controller_name == "neat-distributed"
        assert ctrl.last_reports, "reports must have been produced"

    def test_reports_cover_all_hosts(self):
        hosts = [Host(f"h{i}", CAP) for i in range(4)]
        dc = DataCenter(hosts)
        dc.place(make_vm("a", 0.5), hosts[0])
        ctrl = DistributedNeat(dc)
        ctrl.observe_hour(0)
        ctrl.step(0, 0.0)
        assert {r.host_name for r in ctrl.last_reports} == \
            {h.name for h in hosts}
