"""Batched event-driven hot path (DESIGN.md §10).

Parity contract: with ``use_batched_checks=True`` (the default) the
event simulator must produce *bit-identical* results to the per-host
suspend-check event path (``use_batched_checks=False``, the oracle) —
including under adversarial interleavings of suspends, resumes,
migrations, WoL injections and blocked-I/O toggles (the hypothesis
property test).  Plus unit coverage for the timer wheel, the O(1)
wake/request indexes, the columnar blocked-I/O mirror and the per-VM
request substreams.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import Host, VM
from repro.cluster.events import EventSimulator
from repro.consolidation.drowsy import DrowsyController
from repro.core.binding import FleetBinding
from repro.core.params import DEFAULT_PARAMS
from repro.experiments.common import build_fleet
from repro.sim.event_driven import EventConfig, EventDrivenSimulation
from repro.sim.suspend_sweep import SuspendSweepScheduler
from repro.suspend.columnar import (
    CODE_ACTIVE,
    CODE_BLOCKED_IO,
    CODE_CANDIDATE,
    CODE_EMPTY,
    classify_hosts,
    module_is_columnar,
)
from repro.suspend.module import SuspendingModule
from repro.waking.packets import WoLPacket

from dataclasses import fields as dataclass_fields

from repro.sim.event_driven import EventResult

#: Every EventResult field is a parity observable — derived, not
#: hardcoded, so fields added later are covered automatically.
RESULT_FIELDS = tuple(f.name for f in dataclass_fields(EventResult))


def assert_results_equal(a, b):
    for field in RESULT_FIELDS:
        assert getattr(a, field) == getattr(b, field), field


def _build(n_hosts=3, n_vms=9, hours=24, seed=11, **config_kw):
    dc = build_fleet(n_hosts=n_hosts, n_vms=n_vms, llmi_fraction=0.5,
                     hours=hours, seed=seed)
    sim = EventDrivenSimulation(dc, DrowsyController(dc),
                                config=EventConfig(**config_kw))
    return sim, dc


# ----------------------------------------------------------------------
# parity: batched sweep vs per-host event oracle
# ----------------------------------------------------------------------

class TestSweepParity:
    def test_batched_matches_oracle(self):
        # adaptive_checks=False pins the pure batching mechanics; the
        # adaptive widening (default-on since PR 5) has its own parity
        # class below, which permits fewer check events.
        oracle, dc_o = _build(use_batched_checks=False)
        batched, dc_b = _build(adaptive_checks=False)
        r_o, r_b = oracle.run(6), batched.run(6)
        assert_results_equal(r_o, r_b)
        # Decision counters and power transition histories too.
        for name in oracle.suspending:
            assert (oracle.suspending[name].decision_counts
                    == batched.suspending[name].decision_counts)
        for h_o, h_b in zip(dc_o.hosts, dc_b.hosts):
            assert h_o.transitions == h_b.transitions

    def test_bulk_requests_match_per_push(self):
        per_push, _ = _build(use_bulk_requests=False,
                             use_batched_checks=False)
        bulk, _ = _build(use_batched_checks=False)
        assert_results_equal(per_push.run(6), bulk.run(6))

    def test_scalar_fleet_fallback_parity(self):
        """Batched scheduling with the fleet binding off: the sweep
        evaluates scalar modules but must still be bit-identical."""
        oracle, _ = _build(use_fleet_model=False, use_batched_checks=False)
        batched, _ = _build(use_fleet_model=False, adaptive_checks=False)
        assert_results_equal(oracle.run(6), batched.run(6))

    def test_deviating_module_falls_back_scalar(self):
        """A host with a heuristic is excluded from the columnar pass
        but still swept — and stays bit-identical to the oracle."""

        class VetoEverything:
            def host_seems_idle(self, host):
                return False

        def attach(sim):
            sim.suspending[sim.dc.hosts[0].name].heuristic = VetoEverything()

        oracle, dc_o = _build(use_batched_checks=False)
        attach(oracle)
        batched, dc_b = _build(adaptive_checks=False)
        attach(batched)
        assert_results_equal(oracle.run(6), batched.run(6))
        # The vetoed host never suspended in either path.
        assert dc_b.hosts[0].suspend_count == dc_o.hosts[0].suspend_count

    def test_repeated_runs_rearm_cleanly(self):
        oracle, _ = _build(use_batched_checks=False)
        batched, _ = _build(adaptive_checks=False)
        for start, n in ((0, 3), (3, 2), (5, 4)):
            r_o = oracle.run(n, start_hour=start)
            r_b = batched.run(n, start_hour=start)
            assert_results_equal(r_o, r_b)

    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_interleaved_operations_bit_identical(self, data):
        """Suspends, resumes, migrations, WoL packets and blocked-I/O
        toggles interleaved at arbitrary times: the batched sweep path
        must match the per-host oracle bit for bit."""
        seed = data.draw(st.integers(0, 2**16), label="seed")
        hours = data.draw(st.integers(1, 4), label="hours")
        n_ops = data.draw(st.integers(0, 8), label="n_ops")
        ops = [
            (data.draw(st.floats(1.0, hours * 3600.0 - 1.0), label="at"),
             data.draw(st.sampled_from(["wol", "migrate", "block"]),
                       label="kind"),
             data.draw(st.integers(0, 63), label="target"),
             data.draw(st.integers(0, 63), label="aux"))
            for _ in range(n_ops)
        ]

        def run_one(use_batched):
            dc = build_fleet(n_hosts=3, n_vms=9, llmi_fraction=0.5,
                             hours=24, seed=seed)
            sim = EventDrivenSimulation(
                dc, DrowsyController(dc),
                config=EventConfig(use_batched_checks=use_batched,
                                   adaptive_checks=False))

            def fire(kind, target, aux):
                hosts, vms = dc.hosts, dc.vms
                if kind == "wol":
                    sim._on_wol(WoLPacket(
                        hosts[target % len(hosts)].mac_address,
                        reason="test"), sim.sim.now)
                elif kind == "migrate":
                    vm = vms[target % len(vms)]
                    dest = hosts[aux % len(hosts)]
                    if dc.host_of(vm) is not dest and dest.can_host(vm):
                        sim._execute_migration(vm, dest)
                elif kind == "block":
                    vm = vms[target % len(vms)]
                    vm.blocked_io = not vm.blocked_io
            for at, kind, target, aux in ops:
                sim.sim.schedule_at(at, fire, kind, target, aux)
            result = sim.run(hours)
            counts = {name: dict(module.decision_counts)
                      for name, module in sim.suspending.items()}
            transitions = {h.name: list(h.transitions) for h in dc.hosts}
            return result, counts, transitions

        r_o, c_o, t_o = run_one(False)
        r_b, c_b, t_b = run_one(True)
        assert_results_equal(r_o, r_b)
        assert c_o == c_b
        assert t_o == t_b


# ----------------------------------------------------------------------
# timer wheel
# ----------------------------------------------------------------------

class TestSuspendSweepScheduler:
    def _wheel(self):
        sim = EventSimulator()
        swept = []
        wheel = SuspendSweepScheduler(
            sim, lambda now, due: swept.append((now, [h.name for h in due])))
        return sim, wheel, swept

    def _host(self, name):
        return Host(name, params=DEFAULT_PARAMS)

    def test_one_event_per_deadline(self):
        sim, wheel, swept = self._wheel()
        hosts = [self._host(f"h{i}") for i in range(4)]
        for h in hosts:
            wheel.schedule(h, 5.0)
        assert sim.pending == 1  # one sweep event, not four
        sim.run()
        assert swept == [(5.0, ["h0", "h1", "h2", "h3"])]
        # events_processed accounts one logical event per due host.
        assert sim.events_processed == 4

    def test_rearm_moves_host_to_new_deadline(self):
        sim, wheel, swept = self._wheel()
        h = self._host("h0")
        wheel.schedule(h, 5.0)
        wheel.schedule(h, 9.0)  # re-arm: old registration is stale
        assert wheel.next_deadline(h) == 9.0
        sim.run()
        assert swept == [(9.0, ["h0"])]
        assert sim.events_processed == 1  # 5.0 bucket was cancelled

    def test_cancel_last_member_cancels_sweep_event(self):
        sim, wheel, swept = self._wheel()
        h = self._host("h0")
        wheel.schedule(h, 5.0)
        wheel.cancel(h)
        assert len(wheel) == 0
        sim.run()
        assert swept == []
        assert sim.events_processed == 0

    def test_partial_cancellation_skips_stale_entries(self):
        sim, wheel, swept = self._wheel()
        a, b, c = (self._host(n) for n in "abc")
        for h in (a, b, c):
            wheel.schedule(h, 5.0)
        wheel.cancel(b)
        sim.run()
        assert swept == [(5.0, ["a", "c"])]
        assert sim.events_processed == 2

    def test_rearm_same_deadline_keeps_single_evaluation(self):
        sim, wheel, swept = self._wheel()
        h = self._host("h0")
        wheel.schedule(h, 5.0)
        wheel.schedule(h, 5.0)  # cancel + re-add at the same instant
        sim.run()
        assert swept == [(5.0, ["h0"])]
        assert sim.events_processed == 1

    def test_sweep_can_reschedule_during_fire(self):
        sim = EventSimulator()
        seen = []
        wheel = None

        def sweep(now, due):
            seen.append(now)
            if now < 14.0:
                for h in due:
                    wheel.schedule(h, now + 5.0)
        wheel = SuspendSweepScheduler(sim, sweep)
        wheel.schedule(self._host("h0"), 5.0)
        sim.run()
        assert seen == [5.0, 10.0, 15.0]


# ----------------------------------------------------------------------
# columnar verdicts
# ----------------------------------------------------------------------

class TestColumnarVerdicts:
    def test_classification_codes(self):
        dc = build_fleet(n_hosts=3, n_vms=6, llmi_fraction=0.5,
                         hours=24, seed=5)
        binding = FleetBinding.try_bind(dc, DEFAULT_PARAMS)
        binding.ensure_horizon(0, 24)
        binding.load_hour(0)
        acc = dc._accounting
        codes = classify_hosts(acc, 0)
        for k, host in enumerate(dc.hosts):
            if not host.vms:
                assert codes[k] == CODE_EMPTY
            elif any(vm.blocked_io for vm in host.vms):
                assert codes[k] == CODE_BLOCKED_IO
            elif any(vm.current_activity > 0.0 for vm in host.vms):
                assert codes[k] == CODE_ACTIVE
            else:
                assert codes[k] == CODE_CANDIDATE

    def test_blocked_io_mirrors_into_fleet_column(self):
        dc = build_fleet(n_hosts=2, n_vms=4, llmi_fraction=0.5,
                         hours=24, seed=5)
        vm = dc.vms[0]
        vm.blocked_io = True  # before binding
        binding = FleetBinding.try_bind(dc, DEFAULT_PARAMS)
        i = binding.index[vm.name]
        assert binding.fleet.blocked_io[i]
        vm.blocked_io = False  # after binding: property mirrors
        assert not binding.fleet.blocked_io[i]
        version = binding.fleet.blocked_version
        vm.blocked_io = False  # no-op write: version stable
        assert binding.fleet.blocked_version == version
        vm.blocked_io = True
        assert binding.fleet.blocked_version == version + 1
        acc = dc._accounting
        assert bool(acc.any_blocked_io()[acc.pos(dc.host_of(vm))])

    def test_module_is_columnar(self):
        host = Host("h0", params=DEFAULT_PARAMS)
        module = SuspendingModule(host, DEFAULT_PARAMS)
        assert module_is_columnar(module)
        module.heuristic = object()
        assert not module_is_columnar(module)
        other = SuspendingModule(host, DEFAULT_PARAMS,
                                 blacklist=frozenset({"watchdogd"}))
        assert not module_is_columnar(other)


# ----------------------------------------------------------------------
# O(1) wake / request indexes
# ----------------------------------------------------------------------

class TestIndexes:
    def test_host_by_mac(self):
        dc = build_fleet(n_hosts=4, n_vms=8, llmi_fraction=0.5,
                         hours=24, seed=5)
        for host in dc.hosts:
            assert dc.host_by_mac[host.mac_address] is host
        dc.check_invariants()
        assert len(dc.host_by_mac) == len(dc.hosts)

    def test_find_vm_o1_and_repair(self):
        dc = build_fleet(n_hosts=2, n_vms=4, llmi_fraction=0.5,
                         hours=24, seed=5)
        vm = dc.vms[0]
        found, host = dc.find_vm(vm.name)
        assert found is vm and host is dc.host_of(vm)
        # Wire a VM onto a host directly (bypassing place): the lookup
        # repairs itself via the scan fallback.
        rogue = VM("rogue", vm.trace, vm.resources, params=DEFAULT_PARAMS)
        dc.hosts[1].vms.append(rogue)
        found, host = dc.find_vm("rogue")
        assert found is rogue and host is dc.hosts[1]
        dc.hosts[1].vms.remove(rogue)
        with pytest.raises(KeyError):
            dc.find_vm("rogue")
        with pytest.raises(KeyError):
            dc.find_vm("never-existed")

    def test_wol_uses_index(self):
        sim, dc = _build()
        sim.run(1)
        # Unknown MAC: silently ignored (same as the scan returning None).
        sim._on_wol(WoLPacket("00:00:00:00:00:00", reason="test"),
                    sim.sim.now)


# ----------------------------------------------------------------------
# per-VM request substreams
# ----------------------------------------------------------------------

class TestPerVMStreams:
    @staticmethod
    def _arrivals_by_vm(sim):
        by_vm = {}
        for req in sim.switch.log.requests:
            by_vm.setdefault(req.vm_name, []).append(
                (req.arrival_s, req.service_time_s))
        return {k: sorted(v) for k, v in by_vm.items()}

    def test_reorder_invariance(self):
        """Reversing placement order changes shared-stream draws but not
        per-VM substream draws."""
        def run(reverse, streams):
            # llmi_fraction=0: every VM active every hour, so iteration
            # order visibly couples the shared stream's draws.
            dc = build_fleet(n_hosts=2, n_vms=6, llmi_fraction=0.0,
                             hours=24, seed=13)
            if reverse:
                for host in dc.hosts:
                    host.vms.reverse()
                dc.check_invariants()
            sim = EventDrivenSimulation(
                dc, DrowsyController(dc),
                config=EventConfig(request_streams=streams))
            sim.run(4)
            return self._arrivals_by_vm(sim)

        a, b = run(False, "per-vm"), run(True, "per-vm")
        assert a == b
        c, d = run(False, "shared"), run(True, "shared")
        assert c != d  # the shared stream is order-coupled

    def test_per_vm_streams_deterministic(self):
        def run():
            sim, _ = _build(request_streams="per-vm")
            sim.run(3)
            return self._arrivals_by_vm(sim)
        assert run() == run()

    def test_per_vm_requires_bulk(self):
        with pytest.raises(ValueError):
            _build(request_streams="per-vm", use_bulk_requests=False)
        with pytest.raises(ValueError):
            _build(request_streams="typo")


def test_events_per_second_metric_is_comparable():
    """The sweep credits coalesced checks, so events_processed — the
    events/s numerator — matches the oracle path exactly (asserted by
    parity above) while physical heap traffic shrinks."""
    batched, _ = _build(adaptive_checks=False)
    result = batched.run(4)
    assert batched.sweeper is not None
    assert batched.sweeper.checks_performed > 0
    assert batched.sweeper.sweeps_fired < batched.sweeper.checks_performed
    assert result.events_processed >= batched.sweeper.checks_performed


class TestAdaptiveCheckPeriods:
    """Adaptive suspend-check widening (DESIGN.md §12): bit-identical
    to the fixed-period oracle except for the check-event count."""

    def test_requires_batched_checks(self):
        with pytest.raises(ValueError):
            _build(adaptive_checks=True, use_batched_checks=False)
        with pytest.raises(ValueError):
            _build(adaptive_checks=True, adaptive_max_factor=0)

    def test_default_follows_batched_checks(self):
        """PR 5 flipped the default: adaptive widening is on wherever it
        is legal (the batched path) and off on the fixed-period oracle;
        an explicit True without batched checks stays an error."""
        assert EventConfig().adaptive_checks is True
        assert EventConfig(use_batched_checks=False).adaptive_checks is False
        assert EventConfig(adaptive_checks=False).adaptive_checks is False

    def test_parity_with_fixed_period_oracle(self):
        fixed, dc_f = _build(n_hosts=4, n_vms=16, adaptive_checks=False)
        adaptive, dc_a = _build(n_hosts=4, n_vms=16, adaptive_checks=True)
        r_f, r_a = fixed.run(8), adaptive.run(8)
        for field in RESULT_FIELDS:
            if field == "events_processed":
                continue  # the one intended difference: fewer checks
            assert getattr(r_f, field) == getattr(r_a, field), field
        # Power trajectories are identical to the second: every suspend
        # fires at exactly the deadline the fixed grid would have used.
        for h_f, h_a in zip(dc_f.hosts, dc_a.hosts):
            assert h_f.transitions == h_a.transitions
        assert r_a.events_processed < r_f.events_processed

    def test_max_factor_one_degenerates_to_fixed(self):
        fixed, _ = _build(adaptive_checks=False)
        capped, _ = _build(adaptive_checks=True, adaptive_max_factor=1)
        assert_results_equal(fixed.run(6), capped.run(6))

    def test_widening_keeps_grid_alignment_across_hours(self):
        """Longer horizon with migrations and resumes mixed in."""
        fixed, dc_f = _build(n_hosts=3, n_vms=12, adaptive_checks=False,
                             adaptive_max_factor=16)
        adaptive, dc_a = _build(n_hosts=3, n_vms=12, adaptive_checks=True,
                                adaptive_max_factor=64)
        r_f, r_a = fixed.run(12), adaptive.run(12)
        for h_f, h_a in zip(dc_f.hosts, dc_a.hosts):
            assert h_f.transitions == h_a.transitions
        assert r_f.energy_kwh_by_host == r_a.energy_kwh_by_host
        assert r_f.request_summary == r_a.request_summary
