"""Tests for PlanetLab-like traces, the detector study and failover exp."""

import numpy as np
import pytest

from repro.traces import planetlab_fleet, planetlab_like_trace
from repro.traces.base import VMKind


class TestPlanetLabTraces:
    def test_always_active(self):
        tr = planetlab_like_trace(hours=24 * 14, seed=1)
        assert tr.idle_fraction == 0.0
        assert tr.kind is VMKind.LLMU

    def test_low_median_heavy_tail(self):
        tr = planetlab_like_trace(hours=24 * 60, seed=2)
        a = tr.activities
        assert np.median(a) < 0.35
        assert a.max() > 0.6  # bursts exist

    def test_autocorrelated(self):
        tr = planetlab_like_trace(hours=24 * 60, seed=3)
        a = tr.activities
        lag1 = np.corrcoef(a[:-1], a[1:])[0, 1]
        assert lag1 > 0.3

    def test_deterministic(self):
        a = planetlab_like_trace(hours=100, seed=9)
        b = planetlab_like_trace(hours=100, seed=9)
        np.testing.assert_array_equal(a.activities, b.activities)

    def test_fleet(self):
        fleet = planetlab_fleet(6, hours=48, seed=0)
        assert len(fleet) == 6
        assert len({t.name for t in fleet}) == 6

    def test_validation(self):
        with pytest.raises(ValueError):
            planetlab_like_trace(hours=0)
        with pytest.raises(ValueError):
            planetlab_like_trace(hours=10, ar_coeff=1.2)


class TestDetectorStudy:
    @pytest.fixture(scope="class")
    def data(self):
        from repro.experiments import detector_study

        return detector_study.run(n_hosts=4, n_vms=12, days=2)

    def test_full_grid(self, data):
        assert len(data.cells) == 12
        assert {c.detector for c in data.cells} == {"thr", "mad", "iqr", "lr"}
        assert {c.selector for c in data.cells} == {"mmt", "rs", "mc"}

    def test_metrics_sane(self, data):
        for c in data.cells:
            assert c.energy_kwh > 0
            assert c.migrations >= 0
            assert 0.0 <= c.slatah <= 1.0
            assert c.esv == pytest.approx(c.energy_kwh * c.slatah)

    def test_cell_lookup(self, data):
        cell = data.cell("thr", "mmt")
        assert cell.detector == "thr"
        with pytest.raises(KeyError):
            data.cell("nope", "mmt")

    def test_render(self, data):
        text = data.render()
        assert "SLATAH" in text and "lr" in text


class TestSlatahAccounting:
    def test_saturated_host_counts(self):
        from repro.cluster import DataCenter, Host, HostCapacity, ResourceSpec, VM
        from repro.sim.hourly import HourlyConfig, HourlySimulator
        from repro.traces.synthetic import llmu_trace
        from tests.test_sim_hourly import PassiveController

        host = Host("h", HostCapacity(cpus=2, memory_mb=16384, cpu_overcommit=2.0))
        dc = DataCenter([host])
        # Two VMs at full demand: 2 x 1.0 x 2 vcpus = 4 > 2 cores.
        for i in range(2):
            dc.place(VM(f"v{i}", llmu_trace(hours=48, floor=0.99,
                                            base_level=1.0,
                                            diurnal_amplitude=0.0),
                        ResourceSpec(2, 1024)), host)
        sim = HourlySimulator(dc, PassiveController(),
                              config=HourlyConfig(power_off_empty=False))
        result = sim.run(10)
        assert result.active_host_hours == 10
        assert result.overload_host_hours == 10
        assert result.slatah == 1.0
        assert result.esv == pytest.approx(result.total_energy_kwh)

    def test_idle_host_no_slatah(self):
        from repro.cluster import DataCenter, Host, TESTBED_VM, VM
        from repro.sim.hourly import HourlyConfig, HourlySimulator
        from repro.traces.synthetic import always_idle_trace
        from tests.test_sim_hourly import PassiveController

        host = Host("h")
        dc = DataCenter([host])
        dc.place(VM("v", always_idle_trace(48), TESTBED_VM), host)
        sim = HourlySimulator(dc, PassiveController(),
                              config=HourlyConfig(power_off_empty=False))
        result = sim.run(10)
        assert result.slatah == 0.0


class TestWakingFailoverExperiment:
    def test_run_and_claims(self):
        from repro.experiments import waking_failover

        data = waking_failover.run(days=1, crash_hour=6)
        assert data.failovers == 1
        assert data.service_continued
        assert "failure injection" in data.render()


class TestHostReactivation:
    def test_overload_relief_uses_off_hosts(self):
        """An overloaded pool with only OFF spares powers one back on."""
        from repro.cluster import DataCenter, Host, HostCapacity, ResourceSpec, VM
        from repro.consolidation import NeatController, ThresholdDetector
        from repro.traces.synthetic import llmu_trace

        cap = HostCapacity(cpus=4, memory_mb=16384, cpu_overcommit=2.0)
        busy, spare = Host("busy", cap), Host("spare", cap)
        dc = DataCenter([busy, spare])
        for i in range(3):
            vm = VM(f"v{i}", llmu_trace(hours=48, floor=0.9, base_level=0.95,
                                        diurnal_amplitude=0.0),
                    ResourceSpec(2, 2048))
            dc.place(vm, busy)
            vm.current_activity = 0.95
        spare.power_off(0.0)

        ctrl = NeatController(dc, detector=ThresholdDetector(0.8))
        ctrl.observe_hour(0)
        moved = ctrl.step(0, now=1.0)
        assert moved >= 1
        assert len(spare.vms) >= 1
