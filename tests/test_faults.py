"""Fault-injection subsystem (DESIGN.md §14).

Covers the chaos engine's three contracts:

* **parity** — an all-zero :class:`FaultPlan` installs nothing, so its
  run is bit-identical (``RunResult ==``, events processed and all) to a
  fault-free run, on both backends;
* **determinism** — a fixed ``(plan, seed)`` replays the exact fault
  sequence across repeated runs and across ``SweepRunner`` spawn
  workers;
* **resilience** — lossy WoL strands nothing (retry/backoff), the
  waking-module primary can die mid-run without losing wakes, and the
  hypothesis fuzz asserts structural invariants under random plans.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.api import Simulation
from repro.cluster.events import EventSimulator
from repro.cluster.power import PowerState
from repro.core.params import DEFAULT_PARAMS
from repro.experiments.common import build_fleet
from repro.faults import (
    FaultInjector,
    FaultPlan,
    HostCrashFaults,
    PartitionWindow,
    TransitionFaults,
    WakingServiceFaults,
    WolFaults,
)
from repro.network.sdn import ReliableWolChannel
from repro.waking.packets import WoLPacket

ZERO_PLAN = FaultPlan(name="nothing")

LOSSY_PLAN = FaultPlan(name="lossy",
                       wol=WolFaults(loss_probability=0.2,
                                     delay_probability=0.1))


def _sim(backend="event", faults=None, seed=3, n_hosts=4, n_vms=12,
         hours=48):
    dc = build_fleet(n_hosts=n_hosts, n_vms=n_vms, llmi_fraction=0.5,
                     hours=hours, seed=seed)
    return Simulation(dc, "drowsy", backend, seed=seed, faults=faults)


# ----------------------------------------------------------------------
# plan validation
# ----------------------------------------------------------------------

class TestPlanSpec:
    def test_default_plan_is_zero(self):
        assert ZERO_PLAN.is_zero
        assert not LOSSY_PLAN.is_zero

    def test_probability_bounds(self):
        with pytest.raises(ValueError):
            WolFaults(loss_probability=1.5)
        with pytest.raises(ValueError):
            TransitionFaults(resume_failure_probability=-0.1)
        with pytest.raises(ValueError):
            HostCrashFaults(rate_per_host_per_h=-1.0)

    def test_overlapping_partitions_rejected(self):
        with pytest.raises(ValueError):
            WakingServiceFaults(partitions=(
                PartitionWindow(start_h=1.0, duration_h=3.0),
                PartitionWindow(start_h=2.0, duration_h=1.0)))

    def test_zero_crash_budget_is_zero(self):
        assert HostCrashFaults(rate_per_host_per_h=0.5, max_crashes=0).is_zero


# ----------------------------------------------------------------------
# the parity oracle: zero plans are invisible
# ----------------------------------------------------------------------

class TestZeroPlanParity:
    @pytest.mark.parametrize("backend", ["hourly", "event"])
    def test_zero_plan_bit_identical(self, backend):
        plain = _sim(backend).run(24)
        chaos = _sim(backend, faults=ZERO_PLAN).run(24)
        assert chaos == plain  # includes events_processed on event
        assert chaos.fault_summary is None

    def test_zero_plan_draws_nothing(self):
        injector = FaultInjector(ZERO_PLAN, seed=3)
        sim = _sim("event", faults=injector)
        sim.run(12)
        assert injector._streams == {}


# ----------------------------------------------------------------------
# determinism: replay and sharding
# ----------------------------------------------------------------------

class TestDeterminism:
    def test_fixed_seed_replays_fault_sequence(self):
        plan = FaultPlan(
            name="mix",
            wol=WolFaults(loss_probability=0.3),
            crashes=HostCrashFaults(rate_per_host_per_h=0.02,
                                    recover_after_s=900.0),
            transitions=TransitionFaults(resume_failure_probability=0.05))
        first = _sim("event", faults=plan).run(48)
        second = _sim("event", faults=plan).run(48)
        assert first.fault_summary == second.fault_summary
        assert first.fault_summary.faults_injected > 0
        assert first == second

    def test_seed_changes_fault_sequence(self):
        plan = FaultPlan(name="crashy",
                         crashes=HostCrashFaults(rate_per_host_per_h=0.05))
        runs = {_sim("event", faults=plan, seed=s).run(48).fault_summary
                for s in (1, 2, 3)}
        assert len(runs) > 1  # host-name-keyed Poisson streams move

    def test_crash_schedule_invariant_to_fleet_order(self):
        dc = build_fleet(n_hosts=4, n_vms=8, llmi_fraction=0.5,
                         hours=24, seed=0)
        plan = FaultPlan(name="crashy",
                         crashes=HostCrashFaults(rate_per_host_per_h=0.1,
                                                 max_crashes=100))
        injector = FaultInjector(plan, seed=9)
        forward = injector._crash_schedule(dc.hosts, 0, 24)
        backward = injector._crash_schedule(list(reversed(dc.hosts)), 0, 24)
        assert forward == backward

    def test_chaos_scenario_shards_byte_identically(self):
        from repro.scenarios.sweep import ScenarioCell, run_scenario_sweep

        cells = [ScenarioCell("flash-crowd-lossy-wol", simulator="event",
                              seed=s, hours=8, scale=0.25) for s in (0, 1)]
        serial = run_scenario_sweep(cells, workers=1)
        sharded = run_scenario_sweep(cells, workers=2)
        assert serial.rows == sharded.rows
        assert any(row.faults_injected > 0 for row in serial.rows)


# ----------------------------------------------------------------------
# resilience claims
# ----------------------------------------------------------------------

class TestResilience:
    def test_lossy_wol_strands_no_request(self):
        # The chaos scenario's flash crowds hammer drowsy hosts, so the
        # 20 %-loss wire actually drops magic packets here.
        sim = Simulation.from_scenario("flash-crowd-lossy-wol", seed=7,
                                       backend="event", hours=24, scale=0.5)
        result = sim.run()
        summary = result.fault_summary
        assert summary.wol_dropped > 0
        assert summary.wol_retries > 0
        assert summary.backoff_wait_s > 0.0
        assert summary.stranded_requests == 0
        assert result.request_summary["requests"] > 0

    def test_primary_kill_fails_over_without_lost_wakes(self):
        plan = FaultPlan(name="kill",
                         waking=WakingServiceFaults(kill_primary_at_h=12.0))
        sim = _sim("event", faults=plan)
        result = sim.run(48)
        summary = result.fault_summary
        assert summary.primary_kills == 1
        assert summary.failovers >= 1
        assert summary.lost_service_calls == 0
        assert summary.stranded_requests == 0
        assert sim.engine.waking.active is sim.engine.waking.mirror

    def test_partition_window_served_by_switch_fallback(self):
        plan = FaultPlan(
            name="split",
            waking=WakingServiceFaults(partitions=(
                PartitionWindow(start_h=6.0, duration_h=4.0),)))
        sim = _sim("event", faults=plan)
        result = sim.run(24)
        assert result.fault_summary.partitions == 1
        assert result.fault_summary.stranded_requests == 0
        # The partition healed: the switch sees the service again.
        assert sim.engine.switch.waking_service is sim.engine.waking

    @pytest.mark.parametrize("backend", ["hourly", "event"])
    def test_crashes_charge_unavailability(self, backend):
        plan = FaultPlan(name="crashy",
                         crashes=HostCrashFaults(rate_per_host_per_h=0.02,
                                                 recover_after_s=1800.0))
        sim = _sim(backend, faults=plan)
        result = sim.run(72)
        summary = result.fault_summary
        assert summary.host_crashes > 0
        assert summary.unavailability_s > 0.0
        assert summary.host_recoveries <= summary.host_crashes
        sim.dc.check_invariants()

    def test_resume_failure_fails_over_by_migration(self):
        import dataclasses

        from repro.scenarios import get_scenario

        plan = FaultPlan(
            name="bad-resume",
            transitions=TransitionFaults(resume_failure_probability=1.0,
                                         recover_after_s=600.0))
        # The flash-crowd workload actually wakes hosts, so failed
        # resumes occur; swap the chaos plan into the frozen spec.
        spec = dataclasses.replace(get_scenario("flash-crowd"), faults=plan)
        sim = Simulation.from_scenario(spec, seed=7, backend="event",
                                       hours=24, scale=0.5)
        result = sim.run()
        summary = result.fault_summary
        assert summary.resume_failures > 0
        # Every resume failure either migrated the VMs off or stranded
        # them on the crashed host until its reboot.
        assert summary.failover_migrations + summary.stranded_vms > 0
        sim.dc.check_invariants()


# ----------------------------------------------------------------------
# ReliableWolChannel unit coverage (token-tombstone cancellation)
# ----------------------------------------------------------------------

class Delivered:
    def __init__(self):
        self.packets = []

    def __call__(self, packet, now):
        self.packets.append((packet, now))


class ScriptedTransport:
    """Replays a fixed verdict list, then delivers everything."""

    def __init__(self, *verdicts):
        self.verdicts = list(verdicts)

    def __call__(self, packet):
        return self.verdicts.pop(0) if self.verdicts else ("ok", 0.0)


def make_channel(*verdicts, wake_satisfied=None):
    sim = EventSimulator()
    delivered = Delivered()
    channel = ReliableWolChannel(sim, delivered, DEFAULT_PARAMS,
                                 wake_satisfied)
    if verdicts or wake_satisfied is not None:
        channel.transport = ScriptedTransport(*verdicts)
    return sim, delivered, channel


PACKET = WoLPacket("00:16:3e:00:00:01", reason="test")


class TestReliableWolChannel:
    def test_fault_free_path_is_synchronous(self):
        sim, delivered, channel = make_channel()
        channel.send(PACKET, 0.0)
        assert delivered.packets == [(PACKET, 0.0)]
        assert channel._generation == {}  # no timer ever armed
        assert sim.events_processed == 0

    def test_drop_retries_with_backoff(self):
        sim, delivered, channel = make_channel(("drop", 0.0), ("drop", 0.0))
        channel.send(PACKET, 0.0)
        sim.run()
        assert len(delivered.packets) == 1
        # Third attempt delivered after 1 s + 2 s of backoff.
        assert delivered.packets[0][1] == pytest.approx(3.0)
        assert channel.dropped == 2
        assert channel.retries == 2
        assert channel.backoff_wait_s == pytest.approx(3.0)

    def test_abandon_after_retry_budget(self):
        drops = [("drop", 0.0)] * (DEFAULT_PARAMS.wol_retry_max + 1)
        sim, delivered, channel = make_channel(*drops)
        channel.send(PACKET, 0.0)
        sim.run()
        assert delivered.packets == []
        assert channel.abandoned == 1
        assert channel.retries == DEFAULT_PARAMS.wol_retry_max

    def test_settle_tombstones_pending_retry(self):
        sim, delivered, channel = make_channel(("drop", 0.0))
        channel.send(PACKET, 0.0)
        channel.settle(PACKET.mac_address)
        sim.run()
        assert delivered.packets == []
        assert channel.retries == 0

    def test_settle_tombstones_delayed_delivery(self):
        sim, delivered, channel = make_channel(("delay", 5.0))
        channel.send(PACKET, 0.0)
        channel.settle(PACKET.mac_address)
        sim.run()
        assert delivered.packets == []
        assert channel.delayed == 1

    def test_double_settle_is_idempotent(self):
        sim, delivered, channel = make_channel(("drop", 0.0))
        channel.send(PACKET, 0.0)
        channel.settle(PACKET.mac_address)
        channel.settle(PACKET.mac_address)
        channel.settle("00:16:3e:ff:ff:ff")  # never armed: no-op
        sim.run()
        assert delivered.packets == []
        # A fresh send after settling works with the new generation.
        channel.send(PACKET, sim.now)
        sim.run()
        assert len(delivered.packets) == 1

    def test_satisfied_wake_stops_retrying(self):
        sim, delivered, channel = make_channel(
            ("drop", 0.0), wake_satisfied=lambda mac: True)
        channel.send(PACKET, 0.0)
        sim.run()
        assert delivered.packets == []  # destination already awake
        assert channel.retries == 0

    def test_delay_lands_late(self):
        sim, delivered, channel = make_channel(("delay", 2.5))
        channel.send(PACKET, 0.0)
        sim.run()
        assert delivered.packets[0][1] == pytest.approx(2.5)
        assert channel.delayed == 1


# ----------------------------------------------------------------------
# crash_host cancel-safety (the suspend_sweep tombstone discipline)
# ----------------------------------------------------------------------

class TestCrashCancelSafety:
    def make_engine(self):
        from repro.consolidation.drowsy import DrowsyController
        from repro.sim.event_driven import EventDrivenSimulation

        dc = build_fleet(n_hosts=3, n_vms=6, llmi_fraction=0.5,
                         hours=24, seed=5)
        return EventDrivenSimulation(dc, DrowsyController(dc)), dc

    def test_finish_suspend_after_crash_is_noop(self):
        engine, dc = self.make_engine()
        host = dc.hosts[0]
        engine._begin_suspend(host, None)
        assert host.state is PowerState.SUSPENDING
        assert engine.crash_host(host)
        # The in-flight finish_suspend was cancelled; draining the queue
        # must not resurrect or illegally transition the host.
        engine.sim.run_until(60.0)
        assert host.state is PowerState.CRASHED

    def test_finish_resume_after_crash_is_noop(self):
        engine, dc = self.make_engine()
        host = dc.hosts[0]
        engine._begin_suspend(host, None)
        engine.sim.run_until(engine.params.suspend_latency_s + 1.0)
        assert host.state is PowerState.SUSPENDED
        engine._begin_resume(host)
        assert engine.crash_host(host)
        engine.sim.run_until(engine.sim.now + 60.0)
        assert host.state is PowerState.CRASHED

    def test_double_crash_rejected(self):
        engine, dc = self.make_engine()
        host = dc.hosts[0]
        assert engine.crash_host(host)
        assert not engine.crash_host(host)
        assert engine.host_crashes == 1

    def test_recovery_reboots_and_reschedules(self):
        engine, dc = self.make_engine()
        host = dc.hosts[0]
        assert engine.crash_host(host, recover_after_s=30.0)
        engine.sim.run_until(31.0)
        assert host.state is PowerState.ON
        assert engine.host_recoveries == 1

    def test_crashed_host_blocks_migrations(self):
        engine, dc = self.make_engine()
        src = dc.hosts[0]
        dest = dc.hosts[1]
        vm = src.vms[0]
        engine.crash_host(dest)
        engine._execute_migration(vm, dest)
        assert engine.migrations_blocked == 1
        assert dc.host_of(vm) is src


# ----------------------------------------------------------------------
# hypothesis chaos fuzz: invariants under random plans
# ----------------------------------------------------------------------

prob = st.floats(min_value=0.0, max_value=0.4, allow_nan=False)

plans = st.builds(
    FaultPlan,
    name=st.just("fuzz"),
    wol=st.builds(WolFaults, loss_probability=prob,
                  delay_probability=prob),
    crashes=st.builds(
        HostCrashFaults,
        rate_per_host_per_h=st.sampled_from((0.0, 0.01, 0.05)),
        recover_after_s=st.sampled_from((600.0, 1800.0)),
        max_crashes=st.integers(min_value=0, max_value=4)),
    transitions=st.builds(
        TransitionFaults,
        suspend_hang_probability=prob,
        resume_failure_probability=prob,
        recover_after_s=st.just(600.0)),
    waking=st.builds(
        WakingServiceFaults,
        kill_primary_at_h=st.sampled_from((None, 5.0, 13.0))),
)


class TestChaosFuzz:
    @given(plan=plans, seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=10, deadline=None)
    def test_invariants_hold_under_random_plans(self, plan, seed):
        sim = _sim("event", faults=plan, seed=seed, n_hosts=3, n_vms=9,
                   hours=24)
        vm_names = {vm.name for vm in sim.dc.vms}
        hourly_checks = []

        def check(t, now):
            sim.dc.check_invariants()
            hourly_checks.append(t)

        sim.engine.hour_hooks += (check,)
        result = sim.run(24)  # terminates

        # No VM lost: crashes, evacuations and failovers preserve the
        # fleet population and a consistent placement.
        sim.dc.check_invariants()
        assert {vm.name for vm in sim.dc.vms} == vm_names
        assert len(hourly_checks) == 24

        # Request conservation: drain in-flight completions (no new
        # arrivals past the horizon), then every submitted request is
        # completed, still queued on the switch, or dropped by churn.
        engine = sim.engine
        engine.sim.run_until(engine.sim.now + 3600.0)
        switch = engine.switch
        assert switch.packets_forwarded == (
            len(switch.log.requests) + switch.queued_requests
            + switch.requests_dropped)
        if plan.is_zero:
            assert result.fault_summary is None
