"""Tests for the Nova-like filter scheduler and weighers."""

import pytest

from repro.cluster import Host, HostCapacity, ResourceSpec, VM
from repro.core.params import DEFAULT_PARAMS
from repro.sched import (
    ComputeFilter,
    CoreFilter,
    DifferentHostFilter,
    FilterScheduler,
    IdlenessWeigher,
    MaxVMsFilter,
    RamFilter,
    RamStackWeigher,
    WeightedWeigher,
    drowsy_scheduler,
    vanilla_scheduler,
)
from repro.traces.synthetic import always_idle_trace


def make_vm(name="v", cpus=2, mem=6144):
    return VM(name, always_idle_trace(48), ResourceSpec(cpus, mem))


def make_host(name="h", used=0):
    host = Host(name)
    for i in range(used):
        host.add_vm(make_vm(f"{name}-pre{i}"))
    return host


class TestFilters:
    def test_ram_filter(self):
        host = make_host(used=2)  # 12 GB of 16 GB used
        assert not RamFilter().passes(host, make_vm())
        assert RamFilter().passes(make_host(), make_vm())

    def test_core_filter(self):
        host = Host("h", HostCapacity(cpus=2, memory_mb=32768, cpu_overcommit=1.0))
        host.add_vm(make_vm("a", cpus=2, mem=1024))
        assert not CoreFilter().passes(host, make_vm("b", cpus=1, mem=1024))

    def test_compute_filter_accepts_suspended(self):
        """Drowsy hosts are valid placement targets (the whole point)."""
        host = make_host(used=1)
        host.begin_suspend(1.0)
        host.finish_suspend(2.0)
        assert ComputeFilter().passes(host, make_vm())

    def test_compute_filter_rejects_off(self):
        host = make_host()
        host.power_off(1.0)
        assert not ComputeFilter().passes(host, make_vm())

    def test_max_vms_filter(self):
        f = MaxVMsFilter(2)
        host = make_host(used=2)
        assert not f.passes(host, make_vm())
        with pytest.raises(ValueError):
            MaxVMsFilter(0)

    def test_different_host_filter(self):
        host = make_host(used=1)
        f = DifferentHostFilter(frozenset({"h-pre0"}))
        assert not f.passes(host, make_vm())
        assert f.passes(make_host("g"), make_vm())


class TestWeighers:
    def test_ram_stack_prefers_fuller_host(self):
        w = RamStackWeigher()
        empty, fuller = make_host("e"), make_host("f", used=1)
        vm = make_vm()
        assert w.weigh(fuller, vm, 0) > w.weigh(empty, vm, 0)

    def test_idleness_weigher_prefers_matching_ip(self):
        idle_host, busy_host = make_host("i"), make_host("b")
        idle_mate, busy_mate = make_vm("im"), make_vm("bm")
        candidate = make_vm("c")
        for h in range(14 * 24):
            idle_mate.model.observe(h, 0.0)
            busy_mate.model.observe(h, 0.6)
            candidate.model.observe(h, 0.0)
        idle_host.add_vm(idle_mate)
        busy_host.add_vm(busy_mate)
        w = IdlenessWeigher()
        hour = 14 * 24
        assert w.weigh(idle_host, candidate, hour) > w.weigh(busy_host, candidate, hour)

    def test_weighted_multiplier(self):
        w = WeightedWeigher(RamStackWeigher(), multiplier=2.0)
        host, vm = make_host(used=1), make_vm()
        assert w.weigh(host, vm, 0) == pytest.approx(
            2.0 * RamStackWeigher().weigh(host, vm, 0))


class TestFilterScheduler:
    def test_select_best_host(self):
        sched = vanilla_scheduler()
        hosts = [make_host("a"), make_host("b", used=1)]
        # Stacking: prefer the fuller host b.
        assert sched.select_host(hosts, make_vm(), 0).name == "b"

    def test_returns_none_when_nothing_fits(self):
        sched = vanilla_scheduler()
        hosts = [make_host("a", used=2)]
        assert sched.select_host(hosts, make_vm(), 0) is None

    def test_rank_deterministic_tiebreak(self):
        sched = FilterScheduler()
        hosts = [make_host("b"), make_host("a")]
        ranked = sched.rank(hosts, make_vm(), 0)
        assert [h.name for _, h in ranked] == ["a", "b"]

    def test_drowsy_scheduler_picks_idleness_match(self):
        params = DEFAULT_PARAMS
        sched = drowsy_scheduler(params)
        idle_host, busy_host = make_host("idle"), make_host("busy")
        idle_mate, busy_mate = make_vm("im"), make_vm("bm")
        candidate = make_vm("cand")
        for h in range(14 * 24):
            idle_mate.model.observe(h, 0.0)
            busy_mate.model.observe(h, 0.7)
            candidate.model.observe(h, 0.0)
        idle_host.add_vm(idle_mate)
        busy_host.add_vm(busy_mate)
        chosen = sched.select_host([busy_host, idle_host], candidate, 14 * 24)
        assert chosen.name == "idle"

    def test_filters_applied_before_weighing(self):
        sched = drowsy_scheduler(extra_filters=(MaxVMsFilter(1),))
        full = make_host("full", used=1)
        empty = make_host("empty")
        assert sched.select_host([full, empty], make_vm(), 0).name == "empty"
