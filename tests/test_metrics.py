"""Tests for prediction metrics (paper Table III)."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.metrics import ConfusionCounts, cumulative_curves


class TestConfusionCounts:
    def test_perfect_predictions(self):
        c = ConfusionCounts()
        for _ in range(10):
            c.update(True, True)
            c.update(False, False)
        assert c.recall == 1.0
        assert c.precision == 1.0
        assert c.f_measure == 1.0
        assert c.specificity == 1.0

    def test_table_iii_definitions(self):
        c = ConfusionCounts(tp=6, fp=2, tn=8, fn=4)
        assert c.recall == pytest.approx(6 / 10)
        assert c.precision == pytest.approx(6 / 8)
        assert c.specificity == pytest.approx(8 / 10)
        r, p = 0.6, 0.75
        assert c.f_measure == pytest.approx(2 * r * p / (r + p))

    def test_update_routing(self):
        c = ConfusionCounts()
        c.update(True, True)    # TP
        c.update(True, False)   # FP
        c.update(False, True)   # FN
        c.update(False, False)  # TN
        assert (c.tp, c.fp, c.fn, c.tn) == (1, 1, 1, 1)
        assert c.total == 4

    def test_empty_metrics_are_nan(self):
        c = ConfusionCounts()
        assert math.isnan(c.recall)
        assert math.isnan(c.precision)
        assert math.isnan(c.f_measure)
        assert math.isnan(c.specificity)

    def test_never_idle_trace_has_specificity_only(self):
        """LLMU case (Fig. 4h): no positives, specificity defined."""
        c = ConfusionCounts()
        for _ in range(20):
            c.update(False, False)
        assert c.specificity == 1.0
        assert math.isnan(c.recall)

    def test_batch_matches_loop(self):
        rng = np.random.default_rng(0)
        pred = rng.random(200) < 0.5
        act = rng.random(200) < 0.5
        batch = ConfusionCounts()
        batch.update_batch(pred, act)
        loop = ConfusionCounts()
        for p, a in zip(pred, act):
            loop.update(bool(p), bool(a))
        assert (batch.tp, batch.fp, batch.tn, batch.fn) == \
            (loop.tp, loop.fp, loop.tn, loop.fn)

    def test_batch_shape_mismatch(self):
        c = ConfusionCounts()
        with pytest.raises(ValueError):
            c.update_batch(np.ones(3, bool), np.ones(4, bool))

    def test_as_dict_keys(self):
        d = ConfusionCounts(tp=1, fp=1, tn=1, fn=1).as_dict()
        assert set(d) == {"recall", "precision", "f_measure", "specificity"}


class TestCumulativeCurves:
    def test_final_matches_total_counts(self):
        rng = np.random.default_rng(1)
        pred = rng.random(240) < 0.7
        act = rng.random(240) < 0.7
        curves = cumulative_curves(pred, act, sample_every=24)
        total = ConfusionCounts()
        total.update_batch(pred, act)
        final = curves.final()
        assert final["recall"] == pytest.approx(total.recall)
        assert final["f_measure"] == pytest.approx(total.f_measure)

    def test_sampling_positions(self):
        pred = np.ones(72, bool)
        act = np.ones(72, bool)
        curves = cumulative_curves(pred, act, sample_every=24)
        assert curves.hours == [24, 48, 72]

    def test_monotone_for_perfect_predictor(self):
        pred = act = np.ones(100, bool)
        curves = cumulative_curves(pred, act, sample_every=10)
        assert all(f == 1.0 for f in curves.f_measure)

    def test_requires_1d_equal_length(self):
        with pytest.raises(ValueError):
            cumulative_curves(np.ones(5, bool), np.ones(6, bool))

    def test_empty_curves_final_raises(self):
        from repro.core.metrics import MetricCurves

        with pytest.raises(ValueError):
            MetricCurves().final()

    @given(st.integers(min_value=30, max_value=200), st.integers(0, 2**31 - 1))
    def test_curves_bounded(self, n, seed):
        rng = np.random.default_rng(seed)
        pred = rng.random(n) < 0.5
        act = rng.random(n) < 0.5
        curves = cumulative_curves(pred, act, sample_every=7)
        for series in (curves.recall, curves.precision,
                       curves.f_measure, curves.specificity):
            arr = np.array(series)
            valid = arr[~np.isnan(arr)]
            assert np.all(valid >= 0.0) and np.all(valid <= 1.0)
