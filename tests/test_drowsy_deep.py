"""Deeper tests of the Drowsy-DC controller's mechanisms."""


from repro.cluster import DataCenter, Host, HostCapacity, ResourceSpec, VM
from repro.consolidation import DrowsyController
from repro.core.params import DEFAULT_PARAMS
from repro.traces.synthetic import always_idle_trace


def make_vm(name, mem=4096, cpus=2):
    return VM(name, always_idle_trace(24 * 40), ResourceSpec(cpus, mem))


def train(vm, pattern, hours=28 * 24):
    for t in range(hours):
        vm.model.observe(t, pattern(t))


IDLE = lambda t: 0.0
BUSY = lambda t: 0.5
MORNINGS = lambda t: 0.3 if 8 <= t % 24 <= 11 else 0.0
NIGHTS = lambda t: 0.3 if t % 24 <= 3 else 0.0
HOUR = 28 * 24


class TestOpportunisticStepDeep:
    def test_no_move_when_no_destination_fits(self):
        cap = HostCapacity(cpus=8, memory_mb=8192, cpu_overcommit=1.0)
        h0, h1 = Host("h0", cap), Host("h1", cap)
        dc = DataCenter([h0, h1])
        a, b = make_vm("a"), make_vm("b")
        train(a, IDLE)
        train(b, BUSY)
        dc.place(a, h0)
        dc.place(b, h0)
        # h1 full with one big VM: nothing fits.
        big = VM("big", always_idle_trace(24 * 40), ResourceSpec(2, 8192))
        dc.place(big, h1)
        ctrl = DrowsyController(dc)
        moved = ctrl.opportunistic_step(
            HOUR, lambda vm, dest: dc.migrate(vm, dest, 0.0))
        assert moved == 0
        assert len(h0.vms) == 2

    def test_threshold_respected(self):
        """Hosts under the 7σ range are left alone."""
        h0, h1 = Host("h0"), Host("h1")
        dc = DataCenter([h0, h1])
        a, b = make_vm("a", mem=6144), make_vm("b", mem=6144)
        # Two nearly identical patterns: range < 7 sigma.
        train(a, MORNINGS)
        train(b, MORNINGS)
        dc.place(a, h0)
        dc.place(b, h0)
        assert h0.ip_range(HOUR) < DEFAULT_PARAMS.ip_range_threshold
        ctrl = DrowsyController(dc)
        moved = ctrl.opportunistic_step(
            HOUR, lambda vm, dest: dc.migrate(vm, dest, 0.0))
        assert moved == 0

    def test_single_vm_host_skipped(self):
        h0, h1 = Host("h0"), Host("h1")
        dc = DataCenter([h0, h1])
        a = make_vm("a", mem=6144)
        train(a, BUSY)
        dc.place(a, h0)
        ctrl = DrowsyController(dc)
        assert ctrl.opportunistic_step(
            HOUR, lambda vm, dest: dc.migrate(vm, dest, 0.0)) == 0


class TestRelocateAllDeep:
    def test_heterogeneous_capacities(self):
        """Relocation respects differing host sizes."""
        small = HostCapacity(cpus=4, memory_mb=4096, cpu_overcommit=1.0)
        big = HostCapacity(cpus=16, memory_mb=16384, cpu_overcommit=1.0)
        h0, h1 = Host("small", small), Host("big", big)
        dc = DataCenter([h0, h1])
        vms = [make_vm(f"v{i}", mem=2048, cpus=1) for i in range(5)]
        for vm, pattern in zip(vms, (MORNINGS, NIGHTS, MORNINGS, NIGHTS, MORNINGS)):
            train(vm, pattern)
        dc.place(vms[0], h0)
        dc.place(vms[1], h0)
        for vm in vms[2:]:
            dc.place(vm, h1)
        ctrl = DrowsyController(dc)
        ctrl.relocate_all(HOUR, now=0.0)
        dc.check_invariants()
        # Small host can hold at most 2 of these VMs.
        assert len(h0.vms) <= 2

    def test_relocation_reduces_dispersion(self):
        h0, h1 = Host("h0"), Host("h1")
        dc = DataCenter([h0, h1])
        a, b, c, d = (make_vm(n, mem=6144) for n in "abcd")
        train(a, MORNINGS)
        train(b, NIGHTS)
        train(c, MORNINGS)
        train(d, NIGHTS)
        dc.place(a, h0)
        dc.place(b, h0)
        dc.place(c, h1)
        dc.place(d, h1)

        def total_range():
            return h0.ip_range(HOUR) + h1.ip_range(HOUR)

        before = total_range()
        ctrl = DrowsyController(dc)
        ctrl.relocate_all(HOUR, now=0.0)
        assert total_range() < before
        names0 = {vm.name for vm in h0.vms}
        assert names0 in ({"a", "c"}, {"b", "d"})

    def test_relocate_skips_off_hosts(self):
        from repro.cluster import PowerState

        h0, h1, h2 = Host("h0"), Host("h1"), Host("h2")
        dc = DataCenter([h0, h1, h2])
        a, b = make_vm("a", mem=6144), make_vm("b", mem=6144)
        train(a, MORNINGS)
        train(b, NIGHTS)
        dc.place(a, h0)
        dc.place(b, h0)
        h2.power_off(0.0)
        ctrl = DrowsyController(dc)
        ctrl.relocate_all(HOUR, now=1.0)
        assert h2.vms == []
        assert h2.state is PowerState.OFF


class TestIPDistanceToleranceBuckets:
    def test_footnote3_equality_within_tolerance(self):
        """Distances within the tolerance sort by the classic criterion."""
        from repro.consolidation.selection import IPDistanceSelector

        host = Host("h", HostCapacity(cpus=16, memory_mb=32768))
        # Two VMs with equal IP distance but different memory (migration
        # time): the cheaper one must come first within the bucket.
        small = VM("small", always_idle_trace(24 * 40), ResourceSpec(2, 2048))
        large = VM("large", always_idle_trace(24 * 40), ResourceSpec(2, 8192))
        for vm in (small, large):
            train(vm, MORNINGS)
            host.add_vm(vm)
        order = IPDistanceSelector().order(host, HOUR)
        assert order[0].name == "small"


class TestDrowsyEndToEndSmall:
    def test_mixed_fleet_converges_to_sorted_hosts(self):
        """After a training period, Drowsy separates LLMU from LLMI."""
        from repro.sim.hourly import HourlyConfig, HourlySimulator

        cap = HostCapacity(cpus=8, memory_mb=16384, cpu_overcommit=1.0)
        hosts = [Host(f"h{i}", cap) for i in range(2)]
        dc = DataCenter(hosts)
        from repro.traces.synthetic import llmu_trace, weekly_pattern_trace

        llmu_a = VM("llmu-a", llmu_trace(hours=14 * 24, seed=1),
                    ResourceSpec(2, 6144))
        llmu_b = VM("llmu-b", llmu_trace(hours=14 * 24, seed=2),
                    ResourceSpec(2, 6144))
        idle_sched = {d: (9, 10) for d in range(7)}
        llmi_a = VM("llmi-a", weekly_pattern_trace("w1", idle_sched, weeks=2),
                    ResourceSpec(2, 6144))
        llmi_b = VM("llmi-b", weekly_pattern_trace("w2", idle_sched, weeks=2),
                    ResourceSpec(2, 6144))
        # Worst-case start: mixed pairs.
        dc.place(llmu_a, hosts[0])
        dc.place(llmi_a, hosts[0])
        dc.place(llmu_b, hosts[1])
        dc.place(llmi_b, hosts[1])

        ctrl = DrowsyController(dc)
        sim = HourlySimulator(dc, ctrl,
                              config=HourlyConfig(relocate_all_mode=True,
                                                  power_off_empty=False))
        sim.run(7 * 24)
        groups = [{vm.name for vm in h.vms} for h in hosts]
        assert {"llmu-a", "llmu-b"} in groups
        assert {"llmi-a", "llmi-b"} in groups
