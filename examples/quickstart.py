"""Quickstart: learn a VM's idleness model and query its predictions.

Builds the paper's idleness model (section III) for a single VM running
a nightly backup workload, then asks the two questions Drowsy-DC asks
every hour: "how likely is this VM to be idle at hour X?" and "should
two VMs share a host?".

Run with:  python examples/quickstart.py
"""

from repro import IdlenessModel, slot_of_hour
from repro.core.metrics import ConfusionCounts
from repro.traces import daily_backup_trace, production_trace


def main() -> None:
    # A backup service: active each day at 2 am, idle otherwise.
    trace = daily_backup_trace(days=60, backup_hour=2)

    # Feed the model hour by hour (this is what the per-host model
    # builder does in production), keeping score of its predictions.
    model = IdlenessModel()
    counts = ConfusionCounts()
    for hour, activity in enumerate(trace.activities):
        predicted, actually_idle = model.predict_and_observe(hour, float(activity))
        counts.update(predicted, actually_idle)

    print("after 60 days of observation:")
    print(f"  f-measure so far : {counts.f_measure:.3f}")
    print(f"  learned weights  : day={model.weights[0]:.2f} "
          f"week={model.weights[1]:.2f} month={model.weights[2]:.2f} "
          f"year={model.weights[3]:.2f}")

    # Query tomorrow's hours.
    tomorrow = 60 * 24
    for hour_of_day in (2, 3, 14):
        slot = slot_of_hour(tomorrow + hour_of_day)
        prob = model.idleness_probability(slot)
        verdict = "idle" if model.predict_idle(slot) else "ACTIVE"
        print(f"  {hour_of_day:02d}:00 tomorrow   : P(idle)={prob:.4f} -> {verdict}")

    # Placement question: does this VM match a business-hours VM?
    other = IdlenessModel()
    for hour, activity in enumerate(production_trace(1, days=60).activities):
        other.observe(hour, float(activity))
    slot = slot_of_hour(tomorrow + 2)
    distance = abs(model.raw_ip(slot) - other.raw_ip(slot))
    print(f"  IP distance to a business-hours VM at 02:00: {distance:.2e} "
          f"(threshold for 'too far apart': 7σ = {7 / 8760:.2e})")


if __name__ == "__main__":
    main()
