"""Fleet-scale energy: how the LLMI share changes the picture (§VI-B).

Sweeps the fraction of long-lived mostly-idle VMs in a small fleet and
compares four managers: Drowsy-DC, Neat with S3, vanilla Neat and the
Oasis-like reactive baseline.  The more LLMI VMs a cloud hosts, the more
Drowsy-DC's pattern-matched colocation pays off.

Run with:  python examples/fleet_energy_sweep.py  (takes ~1 minute)
"""

import os

from repro.experiments import fleet_sweep

#: CI smoke runs shrink the sweep via the environment.
DAYS = int(os.environ.get("REPRO_EXAMPLE_DAYS", "5"))
N_VMS = int(os.environ.get("REPRO_EXAMPLE_VMS", "32"))


def main() -> None:
    data = fleet_sweep.run(
        llmi_fractions=(0.0, 0.25, 0.5, 0.75, 1.0),
        n_hosts=max(2, N_VMS // 4), n_vms=N_VMS, days=DAYS)
    print(data.render())
    print()
    best = max(data.points, key=lambda p: p.drowsy_vs_neat_no_s3_pct)
    print(f"at {100 * best.llmi_fraction:.0f} % LLMI, Drowsy-DC uses "
          f"{best.drowsy_kwh:.1f} kWh where vanilla Neat uses "
          f"{best.neat_no_s3_kwh:.1f} kWh "
          f"({best.drowsy_vs_neat_no_s3_pct:.0f} % saved).")


if __name__ == "__main__":
    main()
