"""A week in a Drowsy-DC data center (the paper's testbed, section VI-A).

Builds the 4-host / 8-VM testbed (2 LLMU media-streaming VMs, 6 LLMI
web-search VMs with production-like traces), runs one week under three
managers — Neat without suspension, Neat + S3, Drowsy-DC — through the
``repro.api`` façade, and prints the colocation matrix, the Table-I
suspension figures and the energy comparison.

Run with:  python examples/datacenter_week.py
(set REPRO_EXAMPLE_DAYS to shrink the horizon, e.g. in CI smoke runs)
"""

import os

from repro import Simulation
from repro.analysis import ColocationTracker, energy_table, summarize, suspension_table
from repro.core.params import DEFAULT_PARAMS
from repro.experiments.common import VM_NAMES, build_testbed
from repro.sim.hourly import HourlyConfig

DAYS = int(os.environ.get("REPRO_EXAMPLE_DAYS", "7"))


def run_neat(suspend: bool):
    params = DEFAULT_PARAMS.replace(use_grace=False)
    bed = build_testbed(params, days=DAYS)
    sim = Simulation(
        bed, "neat", params=params,
        config=HourlyConfig(suspend_enabled=suspend, power_off_empty=False))
    return sim.run(DAYS * 24)


def run_drowsy():
    bed = build_testbed(DEFAULT_PARAMS, days=DAYS)
    tracker = ColocationTracker(bed.dc)
    sim = Simulation(
        bed, "drowsy",
        config=HourlyConfig(relocate_all_mode=True, power_off_empty=False),
        observers=(tracker.hour_hook,))
    result = sim.run(DAYS * 24)
    return result, tracker


def main() -> None:
    neat_plain = run_neat(suspend=False)
    neat_s3 = run_neat(suspend=True)
    drowsy, tracker = run_drowsy()

    print("colocation matrix under Drowsy-DC (percent of the week):")
    print(tracker.render(list(VM_NAMES), drowsy.vm_migrations))
    print()
    print("suspended time (Table I layout):")
    print(suspension_table(
        [summarize("Drowsy-DC", drowsy), summarize("Neat + S3", neat_s3)],
        [h for h in drowsy.suspended_fraction_by_host]))
    print()
    print("energy for the week:")
    print(energy_table([
        summarize("Neat (no suspension)", neat_plain),
        summarize("Neat + S3", neat_s3),
        summarize("Drowsy-DC", drowsy),
    ]))


if __name__ == "__main__":
    main()
