"""Fault-tolerant waking: crash the waking module, nobody notices (§V).

The waking module is the one component that must never sleep — it wakes
everyone else.  The paper makes it fault tolerant with heartbeat-mirrored
pairs.  This example runs the testbed, kills the primary module halfway
through, and shows that scheduled wakes and the request SLA survive.

Run with:  python examples/fault_tolerant_waking.py
"""

import os

from repro.experiments import waking_failover

DAYS = int(os.environ.get("REPRO_EXAMPLE_DAYS", "2"))


def main() -> None:
    data = waking_failover.run(days=DAYS)
    print(data.render())
    print()
    if data.service_continued and data.sla.sla_met:
        print("the mirror took over transparently: scheduled wakes fired,")
        print("inbound requests kept waking drowsy hosts, and the 200 ms")
        print("SLA held through the failover.")
    else:  # pragma: no cover - would indicate a regression
        print("WARNING: failover did not preserve service!")


if __name__ == "__main__":
    main()
