"""Timer-driven workloads: drowsy hosts that wake themselves (section V-B).

A backup VM sleeps all day and runs a cron job at 2 am.  The suspending
module reads the cron timer out of the (simulated) hrtimer red-black
tree when it suspends the host; the waking module sends Wake-on-LAN
*ahead* of the expiry so the host is up exactly when the job starts.

The script runs the full event-driven stack twice — with and without
ahead-of-time waking — and shows the wake margin at each expiry.

Run with:  python examples/timer_driven_backup.py
"""

import os

from repro.core.params import DEFAULT_PARAMS
from repro.experiments import backup_anticipation

DAYS = int(os.environ.get("REPRO_EXAMPLE_DAYS", "3"))


def main() -> None:
    print("=== with ahead-of-time wake (Drowsy-DC) ===")
    data = backup_anticipation.run(days=DAYS)
    print(data.render())
    print()
    print("=== without (wake sent at the expiry itself) ===")
    data_off = backup_anticipation.run(
        days=DAYS, params=DEFAULT_PARAMS.replace(ahead_of_time_wake=False))
    print(data_off.render())
    print()
    saved = [a - b for a, b in zip(data.margins_s, data_off.margins_s)]
    print(f"anticipation buys {min(saved):.2f}-{max(saved):.2f} s of margin "
          f"per expiry — the difference between a punctual backup and one "
          f"delayed by the resume latency.")


if __name__ == "__main__":
    main()
