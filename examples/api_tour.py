"""Tour of the ``repro.api`` façade: one entry point, two backends.

Runs the same fleet through the hourly and the event-driven backends
with a custom observer, prints the unified result either way, then
compiles a declarative scenario straight onto the event backend —
three ways to start a run, one ``Simulation`` and one ``RunResult``.

Run with:  python examples/api_tour.py
(set REPRO_EXAMPLE_HOURS / REPRO_EXAMPLE_VMS to shrink it, e.g. in CI)
"""

import os

from repro import Observer, Simulation
from repro.api import backends, controllers
from repro.experiments.common import build_fleet

HOURS = int(os.environ.get("REPRO_EXAMPLE_HOURS", "48"))
N_VMS = int(os.environ.get("REPRO_EXAMPLE_VMS", "32"))


class SuspendWatcher(Observer):
    """Counts fleet-wide drowsy hosts at every hour tick."""

    def __init__(self, dc):
        self.dc = dc
        self.peak = 0

    def on_hour(self, t, now):
        drowsy = sum(1 for h in self.dc.hosts if h.is_suspended)
        self.peak = max(self.peak, drowsy)

    def on_run_end(self, result):
        print(f"  [observer] peak drowsy hosts: {self.peak}, "
              f"final energy {result.total_energy_kwh:.2f} kWh")


def show(label, result):
    print(f"{label:<28} {result.total_energy_kwh:7.2f} kWh   "
          f"{100 * result.global_suspended_fraction:5.1f} % drowsy   "
          f"{result.migrations} migrations")


def main() -> None:
    print(f"registries: controllers={', '.join(controllers.names())} | "
          f"backends={', '.join(backends.names())}")

    # 1. The hourly backend: fleet-scale energy accounting.
    dc = build_fleet(n_hosts=max(2, N_VMS // 4), n_vms=N_VMS,
                     llmi_fraction=0.5, hours=HOURS)
    watcher = SuspendWatcher(dc)
    result = Simulation(dc, "drowsy", "hourly",
                        observers=(watcher,)).run(HOURS)
    show("hourly / drowsy", result)

    # 2. Same fleet shape on the event backend: the full request stack.
    dc2 = build_fleet(n_hosts=max(2, N_VMS // 4), n_vms=N_VMS,
                      llmi_fraction=0.5, hours=HOURS)
    result2 = Simulation(dc2, "neat", "event", seed=7).run(
        min(HOURS, 24))
    show("event / neat", result2)
    summary = result2.request_summary
    print(f"  requests={summary['requests']:.0f}  "
          f"p99={1e3 * summary['p99_s']:.0f} ms  "
          f"wake-ups={summary['wake_requests']:.0f}  "
          f"WoL={result2.wol_sent}")

    # 3. A declarative scenario compiled straight onto a backend.
    sim = Simulation.from_scenario("diurnal-office", seed=3,
                                   backend="hourly", scale=0.5,
                                   hours=min(HOURS, 24))
    show("scenario / diurnal-office", sim.run())


if __name__ == "__main__":
    main()
