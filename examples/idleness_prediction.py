"""Idleness prediction across workload archetypes (Fig. 4 style).

Evaluates the idleness model on the paper's Table II trace types — a
daily backup, the thrice-weekly comic strips with summer holidays, real
production patterns, an always-busy service — and prints final metrics
plus an ASCII ramp-up curve of the F-measure.

Run with:  python examples/idleness_prediction.py [years]
"""

import os
import sys

from repro.analysis import evaluate_traces, evaluation_table, sparkline
from repro.traces import (
    comic_strips_trace,
    daily_backup_trace,
    llmu_trace,
    production_trace,
    seasonal_results_trace,
)


def main() -> None:
    years = (int(sys.argv[1]) if len(sys.argv) > 1
             else int(os.environ.get("REPRO_EXAMPLE_YEARS", "2")))
    days = years * 365
    traces = [
        daily_backup_trace(days=days),
        comic_strips_trace(years=years),
        seasonal_results_trace(years=years),
        production_trace(1, days=days),
        production_trace(3, days=days),
        llmu_trace(hours=days * 24),
    ]
    evaluations = evaluate_traces(traces, sample_every=7 * 24)

    print(f"idleness-model quality over {years} year(s):")
    print(evaluation_table(evaluations))
    print()
    print("F-measure ramp-up (one char per sampled week, left = start):")
    for ev in evaluations:
        print(f"  {ev.trace_name:<22} |{sparkline(ev.curves.f_measure)}|")
    print()
    print("specificity ramp-up (active-hour prediction):")
    for ev in evaluations:
        print(f"  {ev.trace_name:<22} |{sparkline(ev.curves.specificity)}|")


if __name__ == "__main__":
    main()
